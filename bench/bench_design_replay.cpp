// Design-replay benchmark — simulated-vs-analytic cross-check at scale.
//
// Drives the manifest engine's `replay` kind — the same code path
// `eend_run` and the golden suite exercise — over random fields at the
// §5.2.2 density: searched designs (Klein-Ravi baseline, portfolio, and
// the lifetime-constrained portfolio) are realized as scenarios and re-run
// through the full MAC/routing/energy stack. Reports, per (size,
// heuristic): the Eq. 5 analytic energy, the simulated energy and their
// gap (how much the proxy misses), simulated J per delivered Kbit, and the
// lifetime frontier (first battery death vs the analytic max per-node
// load) under finite batteries.
//
// Emits machine-readable JSON (default BENCH_design_replay.json; --json=
// overrides, "none" disables) extending the BENCH_*.json perf/quality
// trajectory, plus the engine's pivot tables on stdout.
//
// Flags: --quick (N in {50,100}; full adds {200,500}), --demands=N,
//        --starts=N, --anneal-iters=N, --reps=N, --rate=R, --battery=J,
//        --duration=S, --jobs=N, --seed=S, --json=PATH, --quiet.
#include <fstream>
#include <iostream>
#include <vector>

#include "core/experiment_engine.hpp"
#include "core/result_sink.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"

namespace {

using namespace eend;

/// Buffers every row so the JSON artifact can pivot them after the run.
class CollectSink final : public core::ResultSink {
 public:
  void row(const core::ResultRow& r) override { rows.push_back(r); }
  std::vector<core::ResultRow> rows;
};

double metric_mean(const core::ResultRow& r, const std::string& name) {
  for (const core::MetricValue& m : r.metrics)
    if (m.name == name) return m.mean;
  std::cerr << "bench_design_replay: row lacks metric " << name << "\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const bool quiet = flags.get_bool("quiet", false);
  const std::string json_path = flags.get("json", "BENCH_design_replay.json");

  core::Experiment e;
  e.id = "bench";
  e.title = "Design replay — simulated vs Eq. 5 energy, lifetime frontier";
  e.kind = core::ExperimentKind::Replay;
  e.node_counts = {50, 100};
  if (!quick) {
    e.node_counts.push_back(200);
    e.node_counts.push_back(500);
  }
  e.heuristics = {"klein_ravi", "portfolio", "portfolio_lifetime"};
  e.demands = static_cast<std::size_t>(flags.get_int("demands", 6));
  e.starts = static_cast<std::size_t>(flags.get_int("starts", 6));
  e.anneal_iters =
      static_cast<std::size_t>(flags.get_int("anneal-iters", 200));
  e.runs = static_cast<std::size_t>(flags.get_int("reps", quick ? 1 : 2));
  e.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  e.replay_stack = "dsr_active";
  e.replay_duration_s = flags.get_double("duration", 120.0);
  e.replay_rate_pps = flags.get_double("rate", 16.0);
  e.battery_j = flags.get_double("battery", 102.5);
  e.demand_weights = {0.5, 1.0, 3.0};
  e.metrics = {{"analytic_eq5_j", 1},     {"sim_energy_j", 1},
               {"analytic_gap_pct", 2},   {"sim_j_per_kbit", 3},
               {"delivery_ratio", 3},     {"first_death_s", 1},
               {"active_nodes", 1},       {"max_node_load_j", 2}};

  core::EngineOptions opts;
  opts.jobs = static_cast<std::size_t>(flags.get_int("jobs", 1));
  opts.progress = quiet ? nullptr : &std::cerr;

  core::ExperimentEngine engine(opts);
  CollectSink collect;
  core::TableSink table(std::cout);
  engine.add_sink(collect);
  engine.add_sink(table);
  engine.run(e);

  // The acceptance property the golden family pins, re-asserted from the
  // user-visible rows at bench scale: the lifetime-constrained portfolio
  // must never die earlier than the unconstrained one, and its analytic
  // max per-node load must stay below it wherever the budget binds.
  for (const std::size_t n : e.node_counts) {
    const core::ResultRow* base = nullptr;
    const core::ResultRow* lifetime = nullptr;
    for (const core::ResultRow& r : collect.rows) {
      if (r.x != static_cast<double>(n)) continue;
      if (r.series == "portfolio") base = &r;
      if (r.series == "portfolio_lifetime") lifetime = &r;
    }
    if (!base || !lifetime) continue;
    if (metric_mean(*lifetime, "first_death_s") <
        metric_mean(*base, "first_death_s") - 1e-9) {
      std::cerr << "bench_design_replay: portfolio_lifetime died earlier "
                   "than portfolio at n=" << n << "\n";
      return 1;
    }
  }

  if (json_path != "none") {
    json::Array sizes_json;
    for (const std::size_t n : e.node_counts) {
      json::Array heur;
      for (const core::ResultRow& r : collect.rows) {
        if (r.x != static_cast<double>(n)) continue;
        heur.push_back(json::Object{
            {"name", json::Value(r.series)},
            {"analytic_eq5_j", json::Value(metric_mean(r, "analytic_eq5_j"))},
            {"sim_energy_j", json::Value(metric_mean(r, "sim_energy_j"))},
            {"analytic_gap_pct",
             json::Value(metric_mean(r, "analytic_gap_pct"))},
            {"sim_j_per_kbit",
             json::Value(metric_mean(r, "sim_j_per_kbit"))},
            {"delivery_ratio",
             json::Value(metric_mean(r, "delivery_ratio"))},
            {"first_death_s", json::Value(metric_mean(r, "first_death_s"))},
            {"max_node_load_j",
             json::Value(metric_mean(r, "max_node_load_j"))}});
      }
      sizes_json.push_back(json::Object{
          {"n", json::Value(static_cast<double>(n))},
          {"reps", json::Value(static_cast<double>(e.runs))},
          {"heuristics", json::Value(std::move(heur))}});
    }
    const json::Object doc{
        {"bench", json::Value(std::string("design_replay"))},
        {"quick", json::Value(quick)},
        {"seed", json::Value(static_cast<double>(e.seed))},
        {"demands", json::Value(static_cast<double>(e.demands))},
        {"starts", json::Value(static_cast<double>(e.starts))},
        {"duration_s", json::Value(e.replay_duration_s)},
        {"rate_pps", json::Value(e.replay_rate_pps)},
        {"battery_j", json::Value(e.battery_j)},
        {"jobs", json::Value(static_cast<double>(opts.jobs))},
        {"sizes", json::Value(std::move(sizes_json))}};
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "bench_design_replay: cannot open " << json_path << "\n";
      return 1;
    }
    out << json::dump(json::Value(doc), 2) << "\n";
    if (!quiet) std::cerr << "wrote " << json_path << "\n";
  }
  return 0;
}
