// Figure 10 — transmit energy (J) of TITAN-PC vs DSR-ODPM in the small
// (500x500) and large (1300x1300) fields across traffic rates.
//
// Shape target: TITAN-PC spends less transmit energy than DSR-ODPM in both
// fields (power-controlled data frames + fewer RREQ rebroadcasts); the gap
// widens in the large field; transmit energy rises with rate. Note: our
// Ptx includes the Pbase floor, so the relative TPC gain is smaller than
// the paper's 54-86% (see EXPERIMENTS.md).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);

  const std::vector<net::StackSpec> stacks = {net::StackSpec::titan_pc(),
                                              net::StackSpec::dsr_odpm()};
  const auto rates = bench::parse_rates(
      flags, quick ? std::vector<double>{2, 6}
                   : std::vector<double>{2, 3, 4, 5, 6});

  auto small = net::ScenarioConfig::small_network();
  auto large = net::ScenarioConfig::large_network();
  if (quick) {
    small.duration_s = 120.0;
    large.duration_s = 120.0;
  }
  const auto opts = bench::parse_bench_options(flags, 5);

  bench::sweep_and_print(std::cout,
                         "Figure 10 — transmit energy, 500x500 m^2", small,
                         stacks, rates, opts,
                         {bench::Metric::TransmitEnergy}, 2);
  bench::sweep_and_print(std::cout,
                         "Figure 10 — transmit energy, 1300x1300 m^2", large,
                         stacks, rates, opts,
                         {bench::Metric::TransmitEnergy}, 2);
  return 0;
}
