// Figure 8 — delivery ratio, small networks (50 nodes, 500x500 m^2,
// 10 CBR flows, 2-6 pkt/s, Cabletron), all eight protocol stacks,
// 5 runs with 95% confidence intervals.
//
// Shape target: every stack delivers ~100% except DSDVH-ODPM(0.6,1.2)-Span
// (74-92%).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);

  auto scenario = net::ScenarioConfig::small_network();
  if (quick) scenario.duration_s = 120.0;

  const std::vector<net::StackSpec> stacks = {
      net::StackSpec::titan_pc(),        net::StackSpec::dsr_odpm_pc(),
      net::StackSpec::dsdvh_odpm_psm(),  net::StackSpec::dsdvh_odpm_span(),
      net::StackSpec::dsrh_odpm_norate(),net::StackSpec::dsrh_odpm_rate(),
      net::StackSpec::dsr_odpm(),        net::StackSpec::dsr_active()};

  const auto rates = bench::parse_rates(
      flags, quick ? std::vector<double>{2, 6}
                   : std::vector<double>{2, 3, 4, 5, 6});
  const auto opts = bench::parse_bench_options(flags, 5);

  bench::sweep_and_print(std::cout,
                         "Figure 8 — delivery ratio, 500x500 m^2 (50 nodes)",
                         scenario, stacks, rates, opts,
                         {bench::Metric::Delivery}, 3);
  return 0;
}
