// Churn serving-loop benchmark (time-varying scenarios, incremental
// re-design).
//
// Drives the manifest engine's `churn` kind — exactly the code path
// `eend_run` and the golden suite exercise — over random fields at the
// §5.2.2 density, one serving loop per (node count, rep): every epoch
// perturbs the instance (arrivals, departures, rate swings, failures,
// motion), repairs the serving design with opt::warm_start_search, and
// races a from-scratch portfolio on the same perturbed problem. Three legs
// per invocation:
//   1. the from-scratch portfolio per epoch — the cold baseline
//      (`cold_wall_s`, computed inside the same rows as the warm repair so
//      both face identical instances);
//   2. the warm repair with presolve off (`warm_wall_s`) — the serving
//      loop's latency story;
//   3. the warm repair with presolve on — the warm/cold *scores* must be
//      identical to leg 2's row by row (the reductions are provably
//      lossless), so the only difference is wall time.
//
// `--assert-min-warm-speedup=P` turns the headline into a CI floor: for
// every node count, the summed cold wall over perturbed epochs must be at
// least P x the summed warm wall (epoch 0 is the shared cold start and is
// excluded). Emits machine-readable JSON (default BENCH_design_churn.json;
// --json= overrides, "none" disables) to extend the BENCH_*.json perf
// trajectory, plus the engine's pivot tables on stdout.
//
// Flags: --quick (N in {50,100}; full adds {200,500}), --demands=N,
//        --epochs=N, --starts=N, --anneal-iters=N, --reps=N, --jobs=N,
//        --seed=S, --json=PATH, --quiet,
//        --assert-min-warm-speedup=P (0 disables),
//        --assert-max-gap-pct=G (fail if any epoch's warm-vs-cold gap
//        exceeds G%; 0 disables).
#include <fstream>
#include <iostream>
#include <vector>

#include "core/experiment_engine.hpp"
#include "core/result_sink.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"

namespace {

using namespace eend;

/// Buffers every row so the JSON artifact can pivot them after the run.
class CollectSink final : public core::ResultSink {
 public:
  void row(const core::ResultRow& r) override { rows.push_back(r); }
  std::vector<core::ResultRow> rows;
};

double metric_mean(const core::ResultRow& r, const std::string& name) {
  for (const core::MetricValue& m : r.metrics)
    if (m.name == name) return m.mean;
  std::cerr << "bench_design_churn: row lacks metric " << name << "\n";
  std::exit(1);
}

std::vector<core::ResultRow> run_experiment(const core::Experiment& e,
                                            const core::EngineOptions& opts) {
  core::ExperimentEngine engine(opts);
  CollectSink collect;
  core::TableSink table(std::cout);
  engine.add_sink(collect);
  engine.add_sink(table);
  engine.run(e);
  return std::move(collect.rows);
}

const core::ResultRow& row_at(const std::vector<core::ResultRow>& rows,
                              const std::string& series, double x) {
  for (const core::ResultRow& r : rows)
    if (r.series == series && r.x == x) return r;
  std::cerr << "bench_design_churn: missing row (" << series << ", " << x
            << ")\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const bool quiet = flags.get_bool("quiet", false);
  const std::string json_path = flags.get("json", "BENCH_design_churn.json");
  const double min_speedup = flags.get_double("assert-min-warm-speedup", 0.0);
  const double max_gap_pct = flags.get_double("assert-max-gap-pct", 0.0);

  core::Experiment e;
  e.id = "bench";
  e.title = "Churn serving loop — warm repair vs from-scratch per epoch";
  e.kind = core::ExperimentKind::Churn;
  e.node_counts = {50, 100};
  if (!quick) {
    e.node_counts.push_back(200);
    e.node_counts.push_back(500);
  }
  e.demands = static_cast<std::size_t>(flags.get_int("demands", 8));
  e.epochs = static_cast<std::size_t>(flags.get_int("epochs", 8));
  e.starts = static_cast<std::size_t>(flags.get_int("starts", 8));
  e.anneal_iters =
      static_cast<std::size_t>(flags.get_int("anneal-iters", 300));
  e.runs = static_cast<std::size_t>(flags.get_int("reps", 2));
  e.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  // A busy trace: every generator dimension fires so the repair faces
  // demand churn, rate swings, failures and motion together.
  e.arrivals_per_epoch = 1;
  e.departures_per_epoch = 1;
  e.swings_per_epoch = 2;
  e.failures_per_epoch = 1;
  e.rate_swing = 0.5;
  e.move_fraction = 0.1;
  e.move_sigma_m = 60.0;
  e.metrics = {{"warm_score", 1},
               {"cold_score", 1},
               {"gap_vs_cold_pct", 2},
               {"fallbacks", 2},
               {"warm_wall_s", 4},
               {"cold_wall_s", 4}};

  core::EngineOptions opts;
  opts.jobs = static_cast<std::size_t>(flags.get_int("jobs", 1));
  opts.progress = quiet ? nullptr : &std::cerr;

  const std::vector<core::ResultRow> rows = run_experiment(e, opts);

  // Leg 3: identical trace, presolve on. Same designs, less search work.
  core::Experiment ep = e;
  ep.title = "Churn serving loop — presolve on (identical designs)";
  ep.presolve = true;
  const std::vector<core::ResultRow> rows_presolve = run_experiment(ep, opts);

  // Presolve soundness at bench scale: every (size, epoch) score must be
  // exactly reproduced — the reduced twins replay the same arithmetic.
  for (const core::ResultRow& r : rows) {
    const core::ResultRow& p = row_at(rows_presolve, r.series, r.x);
    for (const char* m : {"warm_score", "cold_score", "gap_vs_cold_pct"})
      if (metric_mean(r, m) != metric_mean(p, m)) {
        std::cerr << "bench_design_churn: presolve changed " << m << " for ("
                  << r.series << ", epoch=" << r.x << "): "
                  << metric_mean(r, m) << " -> " << metric_mean(p, m) << "\n";
        return 1;
      }
  }

  // Headline: warm-repair speedup over the from-scratch portfolio, summed
  // over the perturbed epochs (epoch 0 is the shared cold start).
  struct SizeSummary {
    std::size_t n = 0;
    double warm_s = 0.0, warm_presolve_s = 0.0, cold_s = 0.0;
    double worst_gap_pct = 0.0, fallbacks = 0.0;
  };
  std::vector<SizeSummary> sizes;
  for (const std::size_t n : e.node_counts) {
    SizeSummary s;
    s.n = n;
    const std::string series = "n=" + std::to_string(n);
    for (std::size_t epoch = 1; epoch < e.epochs; ++epoch) {
      const core::ResultRow& r =
          row_at(rows, series, static_cast<double>(epoch));
      const core::ResultRow& p =
          row_at(rows_presolve, series, static_cast<double>(epoch));
      s.warm_s += metric_mean(r, "warm_wall_s");
      s.warm_presolve_s += metric_mean(p, "warm_wall_s");
      s.cold_s += metric_mean(r, "cold_wall_s");
      s.worst_gap_pct =
          std::max(s.worst_gap_pct, metric_mean(r, "gap_vs_cold_pct"));
      s.fallbacks += metric_mean(r, "fallbacks");
    }
    const double speedup = s.warm_s > 0.0 ? s.cold_s / s.warm_s : 0.0;
    if (!quiet)
      std::cerr << "n=" << n << ": warm " << s.warm_s << "s (presolve "
                << s.warm_presolve_s << "s), cold " << s.cold_s
                << "s, speedup " << speedup << "x, worst gap "
                << s.worst_gap_pct << "%\n";
    if (min_speedup > 0.0 && speedup < min_speedup) {
      std::cerr << "bench_design_churn: warm speedup " << speedup
                << "x at n=" << n << " below required " << min_speedup
                << "x\n";
      return 1;
    }
    if (max_gap_pct > 0.0 && s.worst_gap_pct > max_gap_pct) {
      std::cerr << "bench_design_churn: warm-vs-cold gap "
                << s.worst_gap_pct << "% at n=" << n
                << " above allowed " << max_gap_pct << "%\n";
      return 1;
    }
    sizes.push_back(s);
  }

  if (json_path != "none") {
    json::Array sizes_json;
    for (const SizeSummary& s : sizes) {
      sizes_json.push_back(json::Object{
          {"n", json::Value(static_cast<double>(s.n))},
          {"reps", json::Value(static_cast<double>(e.runs))},
          {"epochs", json::Value(static_cast<double>(e.epochs))},
          {"warm_seconds", json::Value(s.warm_s)},
          {"warm_seconds_presolve", json::Value(s.warm_presolve_s)},
          {"cold_seconds", json::Value(s.cold_s)},
          {"warm_speedup",
           json::Value(s.warm_s > 0.0 ? s.cold_s / s.warm_s : 0.0)},
          {"worst_gap_vs_cold_pct", json::Value(s.worst_gap_pct)},
          {"fallback_epochs", json::Value(s.fallbacks)}});
    }
    const json::Object doc{
        {"bench", json::Value(std::string("design_churn"))},
        {"quick", json::Value(quick)},
        {"seed", json::Value(static_cast<double>(e.seed))},
        {"demands", json::Value(static_cast<double>(e.demands))},
        {"starts", json::Value(static_cast<double>(e.starts))},
        {"anneal_iterations",
         json::Value(static_cast<double>(e.anneal_iters))},
        {"jobs", json::Value(static_cast<double>(opts.jobs))},
        {"min_warm_speedup_asserted", json::Value(min_speedup)},
        {"sizes", json::Value(std::move(sizes_json))}};
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "bench_design_churn: cannot open " << json_path << "\n";
      return 1;
    }
    out << json::dump(json::Value(doc), 2) << "\n";
    if (!quiet) std::cerr << "wrote " << json_path << "\n";
  }
  return 0;
}
