// Figure 15 — energy goodput for high traffic rates (50-200 pkt/s) on the
// 7x7 hypothetical-Cabletron grid with PERFECT sleep scheduling.
//
// Shape target: with idling gone and data dominating, the power-control
// stacks (MTPR, MTPR+, DSRH) overtake TITAN-PC — long min-hop links get
// expensive as the rate grows (the paper's Fig. 15 crossover).
#include "bench_grid_common.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const std::vector<net::StackSpec> stacks = {
      net::StackSpec::titan_pc_perfect(),
      net::StackSpec::dsrh_norate_perfect(),
      net::StackSpec::mtpr_perfect(),
      net::StackSpec::mtpr_plus_perfect(),
      net::StackSpec::dsr_perfect(),
      net::StackSpec::dsr_active()};
  bench::run_grid_figure(
      "Figure 15 — hypothetical card, high rates, perfect sleep scheduling",
      stacks, {50.0, 100.0, 150.0, 200.0}, flags);
  return 0;
}
