// Table 1 — radio parameters for the surveyed wireless cards.
// Regenerates the table from the card registry (mW, as in the paper) plus
// the derived quantities the analyses use.
#include <iostream>

#include "energy/radio_card.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace eend;
  Table t({"card", "Pidle (mW)", "Prx (mW)", "Pbase (mW)", "alpha2 (mW/m^n)",
           "n", "D (m)", "Ptx(D) (mW)"});
  for (const auto& c : energy::fig7_cards()) {
    t.add_row({c.name, Table::num(as_milliwatts(c.p_idle), 1),
               Table::num(as_milliwatts(c.p_rx), 1),
               Table::num(as_milliwatts(c.p_base), 1),
               Table::num(as_milliwatts(c.alpha2), 10),
               Table::num(c.path_loss_n, 0), Table::num(c.max_range_m, 0),
               Table::num(as_milliwatts(c.transmit_power(c.max_range_m)), 1)});
  }
  print_table(std::cout,
              "Table 1 — radio parameters for the surveyed wireless cards",
              t);
  std::cout << "\nNote: 'Hypothetical' is the Cabletron with alpha2 = 5.2e-6"
               " mW/m^4 (paper Section 5.1); Ptx(250 m) exceeds 20 W.\n";
  return 0;
}
