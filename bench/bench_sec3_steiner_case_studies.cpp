// Section 3 worked examples — E_network of the minimum-weight Steiner trees
// ST1/ST2 (Eqs. 6-7) and forests SF1/SF2 (Eqs. 8-9), evaluated both via the
// closed forms and via the generic Eq. 5 evaluator over the constructed
// graphs, plus the 3k/(2k+1) endpoint-idle ratio.
#include <iostream>

#include "analytical/steiner_cases.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  using namespace eend::analytical;
  const Flags flags(argc, argv);
  const double alpha = flags.get_double("alpha", 2.0);
  const double t_idle = flags.get_double("t-idle", 1.0);
  const double t_data = flags.get_double("t-data", 1.0);

  Eq5Params ep;
  ep.t_idle = t_idle;
  ep.t_data_per_packet = t_data;

  Table t({"k", "E(ST1) eval", "E(ST1) Eq.6", "E(ST2) eval", "E(ST2) Eq.7",
           "ST1/ST2 data", "(k+3)/4"});
  for (int k : {1, 2, 4, 8, 16, 32}) {
    CaseParams p;
    p.k = k;
    p.alpha = alpha;
    const auto st1 = make_st1(p);
    const auto st2 = make_st2(p);
    const auto e1 = evaluate_eq5(st1.g, st1.routes, ep);
    const auto e2 = evaluate_eq5(st2.g, st2.routes, ep);
    t.add_row({std::to_string(k), Table::num(e1.total()),
               Table::num(est1_closed(p, t_idle, t_data)),
               Table::num(e2.total()),
               Table::num(est2_closed(p, t_idle, t_data)),
               Table::num(e1.data / e2.data, 3),
               Table::num((k + 3.0) / 4.0, 3)});
  }
  print_table(std::cout,
              "Section 3 — single-sink Steiner trees ST1 vs ST2 "
              "(equal tree weight, diverging E_network)",
              t);

  Table f({"k", "E(SF1) eval", "E(SF1) Eq.8", "E(SF2) eval", "E(SF2) Eq.9",
           "idle ratio (w/ endpoints)", "3k/(2k+1)"});
  for (int k : {1, 2, 4, 8, 16, 32}) {
    CaseParams p;
    p.k = k;
    p.alpha = alpha;
    const auto sf1 = make_sf1(p);
    const auto sf2 = make_sf2(p);
    const auto e1 = evaluate_eq5(sf1.g, sf1.routes, ep);
    const auto e2 = evaluate_eq5(sf2.g, sf2.routes, ep);
    Eq5Params with_endpoints = ep;
    with_endpoints.include_endpoint_idle = true;
    const auto we1 = evaluate_eq5(sf1.g, sf1.routes, with_endpoints);
    const auto we2 = evaluate_eq5(sf2.g, sf2.routes, with_endpoints);
    f.add_row({std::to_string(k), Table::num(e1.total()),
               Table::num(esf1_closed(p, t_idle, t_data)),
               Table::num(e2.total()),
               Table::num(esf2_closed(p, t_idle, t_data)),
               Table::num(we1.idle / we2.idle, 4),
               Table::num(sf_idle_ratio_closed(k), 4)});
  }
  print_table(std::cout,
              "Section 3 — multi-commodity Steiner forests SF1 vs SF2 "
              "(equal communication cost, k vs 1 active relays)",
              f);
  return 0;
}
