// Table 2 — performance with node density: DSR-ODPM-PC vs TITAN-PC at
// 300 and 400 nodes (1300x1300 m^2, 20 flows at 4 pkt/s), keeping flow
// endpoints fixed across densities.
//
// Shape target: TITAN-PC dominates and the gap grows with density — its
// probabilistic, backbone-biased participation keeps route-discovery
// overhead (RREQ rebroadcasts, collisions, ATIM-window pressure) bounded
// while DSR-ODPM-PC's floods scale with N. See EXPERIMENTS.md for the
// magnitude-of-collapse deviation vs the paper.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const auto opts = bench::parse_bench_options(flags, 5);
  const bool quick = opts.quick;

  const std::vector<std::size_t> densities = quick
                                                 ? std::vector<std::size_t>{300}
                                                 : std::vector<std::size_t>{
                                                       300, 400};
  const std::vector<net::StackSpec> stacks = {net::StackSpec::dsr_odpm_pc(),
                                              net::StackSpec::titan_pc()};

  Table del({"# of nodes", "DSR-ODPM-PC", "TITAN-PC"});
  Table gp({"# of nodes", "DSR-ODPM-PC", "TITAN-PC"});
  Table ctrl({"# of nodes", "DSR-ODPM-PC RREQ tx", "TITAN-PC RREQ tx",
              "DSR-ODPM-PC collisions", "TITAN-PC collisions"});

  for (std::size_t n : densities) {
    auto scenario = net::ScenarioConfig::density_network(n);
    if (quick) scenario.duration_s = 120.0;
    std::vector<std::string> drow{std::to_string(n)};
    std::vector<std::string> grow{std::to_string(n)};
    std::vector<std::string> crow{std::to_string(n)};
    std::vector<std::string> crow2;
    for (const auto& stack : stacks) {
      core::ExperimentConfig cfg;
      cfg.scenario = scenario;
      cfg.stack = stack;
      cfg.runs = opts.runs;
      cfg.base_seed = opts.seed;
      cfg.jobs = opts.jobs;
      const auto r = core::run_experiment(cfg);
      drow.push_back(Table::num_ci(r.delivery_ratio.mean,
                                   r.delivery_ratio.ci95_half_width, 3));
      grow.push_back(Table::num_ci(r.goodput_bit_per_j.mean,
                                   r.goodput_bit_per_j.ci95_half_width, 1));
      double rreq = 0, coll = 0;
      for (const auto& raw : r.raw) {
        rreq += static_cast<double>(raw.rreq_transmissions);
        coll += static_cast<double>(raw.mac_collisions);
      }
      crow.push_back(Table::num(rreq / static_cast<double>(r.raw.size()), 0));
      crow2.push_back(Table::num(coll / static_cast<double>(r.raw.size()), 0));
      if (!opts.quiet)
        std::cerr << "  [table2] " << stack.label << " n=" << n << " done\n";
    }
    del.add_row(std::move(drow));
    gp.add_row(std::move(grow));
    crow.insert(crow.end(), crow2.begin(), crow2.end());
    ctrl.add_row(std::move(crow));
  }
  print_table(std::cout, "Table 2 — delivery ratio vs node density", del);
  print_table(std::cout, "Table 2 — energy goodput (bit/J) vs node density",
              gp);
  print_table(std::cout,
              "Table 2 (supplement) — routing overhead vs node density",
              ctrl);
  return 0;
}
