// Table 2 — performance with node density: DSR-ODPM-PC vs TITAN-PC at
// 300 and 400 nodes (1300x1300 m^2, 20 flows at 4 pkt/s), keeping flow
// endpoints fixed across densities, driven through the manifest engine's
// "density" kind. examples/manifests/table2_density.json describes this
// table declaratively and is the golden-pinned reproduction path; this
// bench is a convenience wrapper around the same engine.
//
// Shape target: TITAN-PC dominates and the gap grows with density — its
// probabilistic, backbone-biased participation keeps route-discovery
// overhead (RREQ rebroadcasts, collisions, ATIM-window pressure) bounded
// while DSR-ODPM-PC's floods scale with N. See EXPERIMENTS.md for the
// magnitude-of-collapse deviation vs the paper.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const auto opts = bench::parse_bench_options(flags, 5);

  auto scenario = net::ScenarioConfig::density_network(300);
  if (opts.quick) scenario.duration_s = 120.0;

  core::Experiment e;
  e.id = "table2";
  e.title = "Table 2 — node density, 1300x1300 m^2";
  e.kind = core::ExperimentKind::Density;
  e.scenario_config = scenario;
  e.stack_specs = {{net::StackSpec::dsr_odpm_pc(), net::StackSpec::titan_pc()}};
  e.node_counts = opts.quick ? std::vector<std::size_t>{300}
                             : std::vector<std::size_t>{300, 400};
  e.runs = opts.runs;
  e.seed = opts.seed;
  e.metrics = {{"delivery_ratio", 3},
               {"goodput_bit_per_j", 1},
               {"rreq_transmissions", 0},
               {"mac_collisions", 0}};

  core::EngineOptions engine_opts;
  engine_opts.jobs = opts.jobs;
  engine_opts.progress = opts.quiet ? nullptr : &std::cerr;

  core::ExperimentEngine engine(engine_opts);
  core::TableSink table(std::cout);
  engine.add_sink(table);
  engine.run(e);
  return 0;
}
