// Figure 12 — energy goodput, large networks (200 nodes, 1300x1300 m^2,
// 20 CBR flows). Paper uses 10 runs; default 5 (--runs=10 to match).
//
// Shape targets: TITAN-PC and DSR-ODPM-PC clearly on top; DSDVH collapses
// toward DSR-Active; goodput rises with rate for the healthy stacks.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);

  auto scenario = net::ScenarioConfig::large_network();
  if (quick) scenario.duration_s = 120.0;

  const std::vector<net::StackSpec> stacks = {
      net::StackSpec::titan_pc(),         net::StackSpec::dsr_odpm_pc(),
      net::StackSpec::dsdvh_odpm_psm(),   net::StackSpec::dsrh_odpm_norate(),
      net::StackSpec::dsrh_odpm_rate(),   net::StackSpec::dsr_odpm(),
      net::StackSpec::dsr_active()};

  const auto rates = bench::parse_rates(
      flags, quick ? std::vector<double>{4}
                   : std::vector<double>{2, 3.5, 5, 6});
  const auto opts = bench::parse_bench_options(flags, 3);

  bench::sweep_and_print(
      std::cout, "Figure 12 — energy goodput, 1300x1300 m^2 (200 nodes)",
      scenario, stacks, rates, opts, {bench::Metric::Goodput}, 1);
  return 0;
}
