// Figure 16 — energy goodput for high traffic rates (50-200 pkt/s) on the
// 7x7 hypothetical-Cabletron grid with ODPM sleep scheduling.
//
// Shape target: once idling costs return, TITAN-PC outperforms the
// power-control-first stacks below 200 pkt/s, and the gap at 200 pkt/s is
// much narrower than under perfect scheduling (Fig. 15).
#include "bench_grid_common.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const std::vector<net::StackSpec> stacks = {
      net::StackSpec::titan_pc(),
      net::StackSpec::dsrh_odpm_norate(),
      net::StackSpec::mtpr_odpm(),
      net::StackSpec::mtpr_plus_odpm(),
      net::StackSpec::dsr_odpm(),
      net::StackSpec::dsr_active()};
  bench::run_grid_figure(
      "Figure 16 — hypothetical card, high rates, ODPM scheduling", stacks,
      {50.0, 100.0, 150.0, 200.0}, flags);
  return 0;
}
