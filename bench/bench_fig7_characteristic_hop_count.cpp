// Figure 7 — characteristic hop count m_opt vs bandwidth utilization R/B
// for the six card configurations of the plot legend.
//
// Shape targets: every real card stays below m_opt = 2 at all utilizations
// (relays never pay off); the hypothetical Cabletron crosses 2 at
// R/B ~ 0.25.
#include <algorithm>
#include <iostream>

#include "analytical/route_energy.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const double step = flags.get_double("step", 0.05);

  struct Config {
    energy::RadioCard card;
    double distance;
  };
  const std::vector<Config> configs = {
      {energy::aironet350(), 140.0},   {energy::cabletron(), 250.0},
      {energy::mica2(), 68.0},         {energy::leach_n4(), 100.0},
      {energy::leach_n2(), 75.0},      {energy::hypothetical_cabletron(),
                                        250.0},
  };

  std::vector<std::string> header{"R/B"};
  for (const auto& c : configs)
    header.push_back(c.card.name + " (D=" +
                     Table::num(c.distance, 0) + "m)");
  Table t(std::move(header));

  // Index-based stepping: accumulating rb += step overshoots 0.5 by one
  // ulp and trips the R/B <= 0.5 precondition in mopt_continuous.
  for (int i = 0; 0.10 + i * step <= 0.50 + 1e-9; ++i) {
    const double rb = std::min(0.10 + i * step, 0.50);
    std::vector<std::string> row{Table::num(rb, 2)};
    for (const auto& c : configs)
      row.push_back(
          Table::num(analytical::mopt_continuous(c.card, c.distance, rb), 3));
    t.add_row(std::move(row));
  }
  print_table(std::cout,
              "Figure 7 — m_opt vs bandwidth utilization (R/B) per card", t);

  std::cout << "\nChecks:\n";
  for (const auto& c : configs) {
    bool ever_two = false;
    for (int i = 0; 0.10 + i * 0.01 <= 0.50 + 1e-9; ++i) {
      const double rb = std::min(0.10 + i * 0.01, 0.50);
      if (analytical::mopt_continuous(c.card, c.distance, rb) >= 2.0)
        ever_two = true;
    }
    std::cout << "  " << c.card.name << ": relays "
              << (ever_two ? "CAN pay off (m_opt >= 2 reached)"
                           : "never pay off (m_opt < 2 everywhere)")
              << "\n";
  }
  return 0;
}
