// Figure 7 — characteristic hop count m_opt vs bandwidth utilization R/B
// for the six card configurations of the plot legend, driven through the
// manifest engine's analytic "mopt" kind. The checked-in
// examples/manifests/fig7_small.json describes this figure declaratively
// and is the golden-pinned reproduction path; this bench is a convenience
// wrapper with a --step knob.
//
// Shape targets: every real card stays below m_opt = 2 at all utilizations
// (relays never pay off); the hypothetical Cabletron crosses 2 at
// R/B ~ 0.25.
#include <algorithm>
#include <iostream>

#include "analytical/route_energy.hpp"
#include "core/experiment_engine.hpp"
#include "core/manifest.hpp"
#include "core/result_sink.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const double step = flags.get_double("step", 0.05);
  // Lower bound keeps the rb list at <= ~4000 points; a denormal step
  // would otherwise grow it unboundedly before the engine even runs.
  EEND_REQUIRE_MSG(step >= 1e-4, "--step must be >= 1e-4, got " << step);

  core::Experiment e;
  e.id = "fig7";
  e.title = "Figure 7 — m_opt vs bandwidth utilization (R/B) per card";
  e.kind = core::ExperimentKind::Mopt;
  e.cards = {{"Aironet350", 140.0}, {"Cabletron", 250.0}, {"Mica2", 68.0},
             {"LEACH-n4", 100.0},   {"LEACH-n2", 75.0},
             {"HypoCabletron", 250.0}};
  // Index-based stepping: accumulating rb += step overshoots 0.5 by one
  // ulp and trips the R/B <= 0.5 precondition in mopt_continuous.
  for (int i = 0; 0.10 + i * step <= 0.50 + 1e-9; ++i)
    e.rb.push_back(std::min(0.10 + i * step, 0.50));
  e.metrics = {{"mopt", 3}};

  core::ExperimentEngine engine;
  core::TableSink table(std::cout);
  engine.add_sink(table);
  engine.run(e);

  std::cout << "\nChecks:\n";
  for (const auto& c : e.cards) {
    const auto card = energy::card_by_name(c.card);
    bool ever_two = false;
    for (int i = 0; 0.10 + i * 0.01 <= 0.50 + 1e-9; ++i) {
      const double rb = std::min(0.10 + i * 0.01, 0.50);
      if (analytical::mopt_continuous(card, c.distance_m, rb) >= 2.0)
        ever_two = true;
    }
    std::cout << "  " << card.name << ": relays "
              << (ever_two ? "CAN pay off (m_opt >= 2 reached)"
                           : "never pay off (m_opt < 2 everywhere)")
              << "\n";
  }
  return 0;
}
