// Spatial-index construction and query-throughput benchmark.
//
// Times mac::Channel::freeze_topology() — now a GridIndex-backed O(N·k)
// build — against the brute-force O(N²) all-pairs scan it replaced, and
// measures nodes_within()/for_each_within() query throughput over the hot
// CSR arena, for N in {250, 1000, 4000} (plus 8000 without --quick).
// Fields scale with sqrt(N) so density (and hence k) stays at the paper's
// large-network setting; every run cross-checks the grid neighbor sets
// against the brute scan before timing.
//
// Emits machine-readable JSON (default BENCH_channel_build.json; --json=
// overrides, "none" disables) to seed the BENCH_*.json perf trajectory,
// plus a human table on stdout.
//
// Flags: --quick (fewer sizes/reps), --json=PATH, --reps=N, --seed=S,
//        --quiet.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "energy/radio_card.hpp"
#include "mac/channel.hpp"
#include "net/scenario.hpp"
#include "phy/propagation.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace eend;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<phy::Position> scaled_field(std::size_t n, std::uint64_t seed,
                                        double& side_out) {
  // The huge_field preset's density law, taken from the preset itself so
  // the bench always measures the shipped scenario family's regime.
  const double side = net::ScenarioConfig::huge_field(n).field_w;
  side_out = side;
  std::vector<phy::Position> pts(n);
  const Rng base = Rng(seed).fork(0x9051);
  for (std::size_t i = 0; i < n; ++i) {
    Rng r = base.fork(i);
    pts[i] = phy::Position{r.uniform(0.0, side), r.uniform(0.0, side)};
  }
  return pts;
}

/// The replaced algorithm, verbatim: O(N²) pair scan into per-node sorted
/// vectors. Kept here as the timing and correctness reference.
std::vector<std::vector<std::pair<mac::NodeId, double>>> brute_build(
    const std::vector<phy::Position>& pts, double max_reach) {
  std::vector<std::vector<std::pair<mac::NodeId, double>>> nbr(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (i == j) continue;
      const double d = phy::distance(pts[i], pts[j]);
      if (d <= max_reach)
        nbr[i].emplace_back(static_cast<mac::NodeId>(j), d);
    }
    std::sort(nbr[i].begin(), nbr[i].end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second < b.second
                                            : a.first < b.first;
              });
  }
  return nbr;
}

struct SizeResult {
  std::size_t n = 0;
  double side = 0.0;
  double brute_build_s = 0.0;
  double grid_build_s = 0.0;
  double speedup = 0.0;
  double queries_per_s = 0.0;
  double visited_per_s = 0.0;  ///< neighbor visits/s across all queries
  double avg_neighbors = 0.0;
};

SizeResult bench_size(std::size_t n, std::uint64_t seed, int reps,
                      bool quiet) {
  SizeResult r;
  r.n = n;
  const auto pts = scaled_field(n, seed, r.side);
  const phy::Propagation prop(energy::cabletron(), {});

  // Grid-backed freeze_topology: best of reps, fresh channel each time
  // (freeze is one-shot). Radio setup is excluded from the timed region.
  // Runs first so the frozen survivor supplies max_reach() — the channel's
  // own horizon, not a re-derived copy of its formula.
  r.grid_build_s = 1e300;
  std::unique_ptr<mac::Channel> keep;  // survivor for the query phase
  std::vector<std::unique_ptr<mac::NodeRadio>> radios;
  sim::Simulator sim;
  for (int rep = 0; rep < reps; ++rep) {
    auto ch = std::make_unique<mac::Channel>(sim, prop);
    ch->set_field_extent(r.side, r.side);
    keep.reset();     // the old channel points at the radios cleared next
    radios.clear();
    for (std::size_t i = 0; i < n; ++i) {
      radios.push_back(std::make_unique<mac::NodeRadio>(
          static_cast<mac::NodeId>(i), pts[i], energy::cabletron(), sim));
      ch->register_radio(radios.back().get());
    }
    const auto t0 = std::chrono::steady_clock::now();
    ch->freeze_topology();
    r.grid_build_s = std::min(r.grid_build_s, seconds_since(t0));
    keep = std::move(ch);
  }
  const double max_reach = keep->max_reach();

  // Brute-force baseline: best of reps; the rep-0 result doubles as the
  // reference for the equivalence check below.
  r.brute_build_s = 1e300;
  std::vector<std::vector<std::pair<mac::NodeId, double>>> want;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    auto nbr = brute_build(pts, max_reach);
    r.brute_build_s = std::min(r.brute_build_s, seconds_since(t0));
    if (rep == 0) {
      std::size_t edges = 0;
      for (const auto& v : nbr) edges += v.size();
      r.avg_neighbors = static_cast<double>(edges) /
                        static_cast<double>(std::max<std::size_t>(n, 1));
      want = std::move(nbr);
    }
  }
  r.speedup = r.brute_build_s / r.grid_build_s;

  // Equivalence cross-check before trusting any timing: every node's
  // arena span must equal the brute scan (ids and order).
  {
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t k = 0;
      bool ok = true;
      keep->for_each_within(static_cast<mac::NodeId>(i), max_reach,
                            [&](mac::NodeId id, double d) {
                              ok = ok && k < want[i].size() &&
                                   want[i][k].first == id &&
                                   want[i][k].second == d;
                              ++k;
                            });
      EEND_REQUIRE_MSG(ok && k == want[i].size(),
                       "grid/brute neighbor mismatch at node "
                           << i << " (n=" << n << ")");
    }
  }

  // Query throughput: non-allocating visitor at data-frame reach over all
  // nodes, repeated until ~50ms elapsed.
  const double rx = prop.max_range();
  std::uint64_t queries = 0, visited = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  while (elapsed < 0.05) {
    for (std::size_t i = 0; i < n; ++i) {
      keep->for_each_within(static_cast<mac::NodeId>(i), rx,
                            [&](mac::NodeId, double) { ++visited; });
      ++queries;
    }
    elapsed = seconds_since(t0);
  }
  r.queries_per_s = static_cast<double>(queries) / elapsed;
  // Reporting `visited` keeps the walk observable — without it the
  // optimizer deletes the loop and the throughput numbers are fiction.
  r.visited_per_s = static_cast<double>(visited) / elapsed;

  if (!quiet)
    std::cerr << "  n=" << n << " done (brute "
              << format_double(r.brute_build_s) << "s, grid "
              << format_double(r.grid_build_s) << "s)\n";
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const bool quiet = flags.get_bool("quiet", false);
  const int reps =
      static_cast<int>(flags.get_int("reps", quick ? 2 : 5));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string json_path =
      flags.get("json", "BENCH_channel_build.json");

  std::vector<std::size_t> sizes{250, 1000, 4000};
  if (!quick) sizes.push_back(8000);

  std::vector<SizeResult> results;
  for (const std::size_t n : sizes)
    results.push_back(bench_size(n, seed, reps, quiet));

  Table t({"N", "field (m)", "brute build (s)", "grid build (s)", "speedup",
           "queries/s", "visits/s", "avg neighbors"});
  for (const SizeResult& r : results)
    t.add_row({format_u64(r.n), Table::num(r.side, 0),
               Table::num(r.brute_build_s, 5), Table::num(r.grid_build_s, 5),
               Table::num(r.speedup, 1), Table::num(r.queries_per_s, 0),
               Table::num(r.visited_per_s, 0),
               Table::num(r.avg_neighbors, 1)});
  print_table(std::cout,
              "Channel topology build — GridIndex vs brute-force O(N^2)", t);

  if (json_path != "none") {
    json::Array arr;
    for (const SizeResult& r : results) {
      json::Object o;
      o.emplace_back("n", static_cast<double>(r.n));
      o.emplace_back("field_m", r.side);
      o.emplace_back("brute_build_s", r.brute_build_s);
      o.emplace_back("grid_build_s", r.grid_build_s);
      o.emplace_back("speedup", r.speedup);
      o.emplace_back("queries_per_s", r.queries_per_s);
      o.emplace_back("visited_per_s", r.visited_per_s);
      o.emplace_back("avg_neighbors", r.avg_neighbors);
      arr.emplace_back(std::move(o));
    }
    json::Object top;
    top.emplace_back("bench", std::string("channel_build"));
    top.emplace_back("seed", static_cast<double>(seed));
    top.emplace_back("reps", static_cast<double>(reps));
    top.emplace_back("results", std::move(arr));
    std::ofstream out(json_path, std::ios::binary);
    EEND_REQUIRE_MSG(out, "cannot write " << json_path);
    out << json::dump(json::Value(std::move(top)), 2) << "\n";
    if (!quiet) std::cerr << "  wrote " << json_path << "\n";
  }
  return 0;
}
