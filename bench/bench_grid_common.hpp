// Shared driver for the §5.2.3 hypothetical-card grid figures (13-16):
// run the base-rate (2 pkt/s) simulation per stack, freeze routes, and
// print the analytic goodput series (Kbit/J, as the paper plots).
//
// Accepts --jobs=N (stacks evaluated in parallel, output order fixed) and
// --quiet (suppress stderr progress) like the replication benches.
#pragma once

#include <iostream>
#include <mutex>
#include <vector>

#include "core/grid_study.hpp"
#include "core/parallel_runner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace eend::bench {

inline void run_grid_figure(const std::string& title,
                            const std::vector<net::StackSpec>& stacks,
                            const std::vector<double>& rates,
                            const Flags& flags) {
  auto scenario = net::ScenarioConfig::hypothetical_grid();
  scenario.rate_pps = flags.get_double("base-rate", 2.0);
  scenario.duration_s =
      flags.get_double("duration", flags.get_bool("quick", false) ? 120.0
                                                                  : 900.0);
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto jobs = static_cast<std::size_t>(flags.get_int("jobs", 1));
  const bool quiet = flags.get_bool("quiet", false);

  // Each stack's base-rate simulation is independent; fan them out and
  // keep the results in stack order so the tables never change with jobs.
  std::vector<core::GridSeries> series(stacks.size());
  std::mutex io_m;
  core::ParallelRunner pool(jobs);
  pool.for_each_index(stacks.size(), [&](std::size_t i) {
    series[i] = core::grid_series(scenario, stacks[i], rates);
    if (!quiet) {
      std::lock_guard<std::mutex> lk(io_m);
      std::cerr << "  [" << title << "] " << stacks[i].label << " done ("
                << series[i].active_nodes.size() << " active nodes)\n";
    }
  });

  std::vector<std::string> header{"rate (pkt/s)"};
  for (const auto& s : series) header.push_back(s.label);
  Table t(std::move(header));
  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    std::vector<std::string> row{Table::num(rates[ri], 1)};
    for (const auto& s : series)
      row.push_back(Table::num(s.points[ri].goodput_bit_per_j / 1e3, 3));
    t.add_row(std::move(row));
  }
  print_table(std::cout, title + " — energy goodput (Kbit/J)", t);

  // Supplement: active-node counts explain the idle-cost differences.
  Table a({"stack", "active nodes", "data W @max rate", "passive W @max rate"});
  for (const auto& s : series)
    a.add_row({s.label, std::to_string(s.active_nodes.size()),
               Table::num(s.points.back().data_power_w, 2),
               Table::num(s.points.back().passive_power_w, 2)});
  print_table(std::cout, title + " — frozen-route summary", a);
}

}  // namespace eend::bench
