// Shared driver for the §5.2.3 hypothetical-card grid figures (13-16):
// run the base-rate (2 pkt/s) simulation per stack, freeze routes, and
// print the analytic goodput series (Kbit/J, as the paper plots) plus the
// frozen-route summary — all through the manifest engine's grid kind.
//
// Accepts --jobs=N (stacks evaluated in parallel, output order fixed) and
// --quiet (suppress stderr progress) like the replication benches.
#pragma once

#include <iostream>
#include <vector>

#include "core/experiment_engine.hpp"
#include "core/manifest.hpp"
#include "core/result_sink.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace eend::bench {

/// The grid-figure experiment as a manifest object; also reused by tests.
inline core::Experiment make_grid_experiment(
    const std::string& title, const std::vector<net::StackSpec>& stacks,
    const std::vector<double>& rates, const Flags& flags) {
  auto scenario = net::ScenarioConfig::hypothetical_grid();
  scenario.duration_s =
      flags.get_double("duration", flags.get_bool("quick", false) ? 120.0
                                                                  : 900.0);

  core::Experiment e;
  e.id = "bench";
  e.title = title;
  e.kind = core::ExperimentKind::Grid;
  e.scenario_config = scenario;
  e.stack_specs = stacks;
  e.rates_pps = rates;
  e.base_rate_pps = flags.get_double("base-rate", 2.0);
  e.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  e.metrics = {{"goodput_kbit_per_j", 3},
               {"active_nodes", 0},
               {"data_power_w", 2},
               {"passive_power_w", 2}};
  return e;
}

inline void run_grid_figure(const std::string& title,
                            const std::vector<net::StackSpec>& stacks,
                            const std::vector<double>& rates,
                            const Flags& flags) {
  core::EngineOptions opts;
  opts.jobs = static_cast<std::size_t>(flags.get_int("jobs", 1));
  opts.progress = flags.get_bool("quiet", false) ? nullptr : &std::cerr;

  core::ExperimentEngine engine(opts);
  core::TableSink table(std::cout);
  engine.add_sink(table);
  engine.run(make_grid_experiment(title, stacks, rates, flags));
}

}  // namespace eend::bench
