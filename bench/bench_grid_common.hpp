// Shared driver for the §5.2.3 hypothetical-card grid figures (13-16):
// run the base-rate (2 pkt/s) simulation per stack, freeze routes, and
// print the analytic goodput series (Kbit/J, as the paper plots).
#pragma once

#include <iostream>
#include <vector>

#include "core/grid_study.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace eend::bench {

inline void run_grid_figure(const std::string& title,
                            const std::vector<net::StackSpec>& stacks,
                            const std::vector<double>& rates,
                            const Flags& flags) {
  auto scenario = net::ScenarioConfig::hypothetical_grid();
  scenario.rate_pps = flags.get_double("base-rate", 2.0);
  scenario.duration_s =
      flags.get_double("duration", flags.get_bool("quick", false) ? 120.0
                                                                  : 900.0);
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  std::vector<core::GridSeries> series;
  series.reserve(stacks.size());
  for (const auto& stack : stacks) {
    series.push_back(core::grid_series(scenario, stack, rates));
    std::cerr << "  [" << title << "] " << stack.label << " done ("
              << series.back().active_nodes.size() << " active nodes)\n";
  }

  std::vector<std::string> header{"rate (pkt/s)"};
  for (const auto& s : series) header.push_back(s.label);
  Table t(std::move(header));
  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    std::vector<std::string> row{Table::num(rates[ri], 1)};
    for (const auto& s : series)
      row.push_back(Table::num(s.points[ri].goodput_bit_per_j / 1e3, 3));
    t.add_row(std::move(row));
  }
  print_table(std::cout, title + " — energy goodput (Kbit/J)", t);

  // Supplement: active-node counts explain the idle-cost differences.
  Table a({"stack", "active nodes", "data W @max rate", "passive W @max rate"});
  for (const auto& s : series)
    a.add_row({s.label, std::to_string(s.active_nodes.size()),
               Table::num(s.points.back().data_power_w, 2),
               Table::num(s.points.back().passive_power_w, 2)});
  print_table(std::cout, title + " — frozen-route summary", a);
}

}  // namespace eend::bench
