// Figure 11 — delivery ratio, large networks (200 nodes, 1300x1300 m^2,
// 20 CBR flows, Cabletron). Paper uses 10 runs; default here is 5 for
// wall-clock sanity (--runs=10 restores the paper's count).
//
// Shape targets: the idle-first stacks (TITAN-PC, DSR-ODPM-PC) hold near
// 1.0 across 2-6 pkt/s; joint optimization (DSRH, DSDVH) degrades beyond
// ~3.5 pkt/s with larger variance; DSR-Active's delivery suffers at scale.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);

  auto scenario = net::ScenarioConfig::large_network();
  if (quick) scenario.duration_s = 120.0;

  const std::vector<net::StackSpec> stacks = {
      net::StackSpec::titan_pc(),         net::StackSpec::dsr_odpm_pc(),
      net::StackSpec::dsdvh_odpm_psm(),   net::StackSpec::dsrh_odpm_norate(),
      net::StackSpec::dsrh_odpm_rate(),   net::StackSpec::dsr_odpm(),
      net::StackSpec::dsr_active()};

  const auto rates = bench::parse_rates(
      flags, quick ? std::vector<double>{4}
                   : std::vector<double>{2, 3.5, 5, 6});
  const auto opts = bench::parse_bench_options(flags, 3);

  bench::sweep_and_print(
      std::cout, "Figure 11 — delivery ratio, 1300x1300 m^2 (200 nodes)",
      scenario, stacks, rates, opts, {bench::Metric::Delivery}, 3);
  return 0;
}
