// Shared helpers for the figure/table regeneration benches.
//
// Every bench binary accepts:
//   --runs=N     replications per cell (default: the paper's count, or a
//                reduced default where noted for wall-clock sanity)
//   --quick      tiny smoke configuration (1 run, short sims)
//   --seed=S     base seed
//   --jobs=N     worker threads for replications (1 = serial, 0 = one per
//                hardware thread); tables are identical for every N
//   --quiet      suppress progress lines on stderr (CI logs, piped output)
#pragma once

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/experiment_engine.hpp"
#include "core/manifest.hpp"
#include "core/result_sink.hpp"
#include "net/network.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace eend::bench {

/// The knobs shared by every bench binary, parsed once from Flags.
struct BenchOptions {
  std::size_t runs = 1;
  std::uint64_t seed = 1;
  std::size_t jobs = 1;
  bool quick = false;
  bool quiet = false;
};

inline BenchOptions parse_bench_options(const Flags& flags,
                                        std::size_t full_runs,
                                        std::size_t quick_runs = 1) {
  BenchOptions o;
  o.quick = flags.get_bool("quick", false);
  o.runs = static_cast<std::size_t>(
      flags.get_int("runs", static_cast<std::int64_t>(
                                o.quick ? quick_runs : full_runs)));
  o.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  // Negative --jobs would wrap through size_t; treat it as serial.
  o.jobs = static_cast<std::size_t>(std::max<std::int64_t>(
      flags.get_int("jobs", 1), 0));
  o.quiet = flags.get_bool("quiet", false);
  return o;
}

enum class Metric { Delivery, Goodput, TransmitEnergy };

inline const char* metric_key(Metric m) {
  switch (m) {
    case Metric::Delivery: return "delivery_ratio";
    case Metric::Goodput: return "goodput_bit_per_j";
    case Metric::TransmitEnergy: return "transmit_energy_j";
  }
  return "?";
}

/// Build the manifest experiment a figure bench describes: one sweep over
/// (stacks x rates) with the bench's already-resolved scenario.
inline core::Experiment make_sweep_experiment(
    const std::string& title, const net::ScenarioConfig& scenario,
    const std::vector<net::StackSpec>& stacks,
    const std::vector<double>& rates, const BenchOptions& opts,
    const std::vector<Metric>& metrics, int precision) {
  core::Experiment e;
  e.id = "bench";
  e.title = title;
  e.kind = core::ExperimentKind::Sweep;
  e.scenario_config = scenario;
  e.stack_specs = stacks;
  e.rates_pps = rates;
  e.runs = opts.runs;
  e.seed = opts.seed;
  for (Metric m : metrics) e.metrics.push_back({metric_key(m), precision});
  return e;
}

/// Run a (stack x rate) sweep through the manifest engine and print one
/// pivot table per metric: rows = rate, one column per stack, cells =
/// "mean +- ci95". Replications run on opts.jobs workers; the tables are
/// identical for every jobs value.
inline void sweep_and_print(std::ostream& os, const std::string& title,
                            const net::ScenarioConfig& scenario,
                            const std::vector<net::StackSpec>& stacks,
                            const std::vector<double>& rates,
                            const BenchOptions& opts,
                            const std::vector<Metric>& metrics,
                            int precision = 3) {
  core::EngineOptions engine_opts;
  engine_opts.jobs = opts.jobs;
  engine_opts.progress = opts.quiet ? nullptr : &std::cerr;

  core::ExperimentEngine engine(engine_opts);
  core::TableSink table(os);
  engine.add_sink(table);
  engine.run(make_sweep_experiment(title, scenario, stacks, rates, opts,
                                   metrics, precision));
}

inline std::vector<double> parse_rates(const Flags& flags,
                                       std::vector<double> def) {
  if (!flags.has("rates")) return def;
  std::vector<double> out;
  const std::string s = flags.get("rates", "");
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(std::stod(s.substr(pos, next - pos)));
    pos = next + 1;
  }
  return out;
}

}  // namespace eend::bench
