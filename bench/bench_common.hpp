// Shared helpers for the figure/table regeneration benches.
//
// Every bench binary accepts:
//   --runs=N     replications per cell (default: the paper's count, or a
//                reduced default where noted for wall-clock sanity)
//   --quick      tiny smoke configuration (1 run, short sims)
//   --seed=S     base seed
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "net/network.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace eend::bench {

enum class Metric { Delivery, Goodput, TransmitEnergy };

inline const char* metric_name(Metric m) {
  switch (m) {
    case Metric::Delivery: return "delivery ratio";
    case Metric::Goodput: return "energy goodput (bit/J)";
    case Metric::TransmitEnergy: return "transmit energy (J)";
  }
  return "?";
}

inline SampleStats pick(const core::ExperimentResult& r, Metric m) {
  switch (m) {
    case Metric::Delivery: return r.delivery_ratio;
    case Metric::Goodput: return r.goodput_bit_per_j;
    case Metric::TransmitEnergy: return r.transmit_energy_j;
  }
  return {};
}

/// Run a (stack x rate) sweep and print one table per metric: rows = rate,
/// one column per stack, cells = "mean +- ci95".
inline void sweep_and_print(std::ostream& os, const std::string& title,
                            const net::ScenarioConfig& scenario,
                            const std::vector<net::StackSpec>& stacks,
                            const std::vector<double>& rates,
                            std::size_t runs, std::uint64_t seed,
                            const std::vector<Metric>& metrics,
                            int precision = 3) {
  // results[stack][rate]
  std::vector<std::vector<core::ExperimentResult>> results;
  results.reserve(stacks.size());
  for (const auto& stack : stacks) {
    core::ExperimentConfig cfg;
    cfg.scenario = scenario;
    cfg.stack = stack;
    cfg.runs = runs;
    cfg.base_seed = seed;
    results.push_back(core::sweep_rates(cfg, rates));
    std::cerr << "  [" << title << "] " << stack.label << " done\n";
  }

  for (Metric m : metrics) {
    std::vector<std::string> header{"rate (pkt/s)"};
    for (const auto& s : stacks) header.push_back(s.label);
    Table t(std::move(header));
    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
      std::vector<std::string> row{Table::num(rates[ri], 1)};
      for (std::size_t si = 0; si < stacks.size(); ++si) {
        const auto stats = pick(results[si][ri], m);
        row.push_back(
            Table::num_ci(stats.mean, stats.ci95_half_width, precision));
      }
      t.add_row(std::move(row));
    }
    print_table(os, title + " — " + metric_name(m), t);
  }
}

inline std::vector<double> parse_rates(const Flags& flags,
                                       std::vector<double> def) {
  if (!flags.has("rates")) return def;
  std::vector<double> out;
  const std::string s = flags.get("rates", "");
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(std::stod(s.substr(pos, next - pos)));
    pos = next + 1;
  }
  return out;
}

}  // namespace eend::bench
