// Shared helpers for the figure/table regeneration benches.
//
// Every bench binary accepts:
//   --runs=N     replications per cell (default: the paper's count, or a
//                reduced default where noted for wall-clock sanity)
//   --quick      tiny smoke configuration (1 run, short sims)
//   --seed=S     base seed
//   --jobs=N     worker threads for replications (1 = serial, 0 = one per
//                hardware thread); tables are identical for every N
//   --quiet      suppress progress lines on stderr (CI logs, piped output)
#pragma once

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "net/network.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace eend::bench {

/// The knobs shared by every bench binary, parsed once from Flags.
struct BenchOptions {
  std::size_t runs = 1;
  std::uint64_t seed = 1;
  std::size_t jobs = 1;
  bool quick = false;
  bool quiet = false;
};

inline BenchOptions parse_bench_options(const Flags& flags,
                                        std::size_t full_runs,
                                        std::size_t quick_runs = 1) {
  BenchOptions o;
  o.quick = flags.get_bool("quick", false);
  o.runs = static_cast<std::size_t>(
      flags.get_int("runs", static_cast<std::int64_t>(
                                o.quick ? quick_runs : full_runs)));
  o.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  // Negative --jobs would wrap through size_t; treat it as serial.
  o.jobs = static_cast<std::size_t>(std::max<std::int64_t>(
      flags.get_int("jobs", 1), 0));
  o.quiet = flags.get_bool("quiet", false);
  return o;
}

enum class Metric { Delivery, Goodput, TransmitEnergy };

inline const char* metric_name(Metric m) {
  switch (m) {
    case Metric::Delivery: return "delivery ratio";
    case Metric::Goodput: return "energy goodput (bit/J)";
    case Metric::TransmitEnergy: return "transmit energy (J)";
  }
  return "?";
}

inline SampleStats pick(const core::ExperimentResult& r, Metric m) {
  switch (m) {
    case Metric::Delivery: return r.delivery_ratio;
    case Metric::Goodput: return r.goodput_bit_per_j;
    case Metric::TransmitEnergy: return r.transmit_energy_j;
  }
  return {};
}

/// Run a (stack x rate) sweep and print one table per metric: rows = rate,
/// one column per stack, cells = "mean +- ci95". Replications run on
/// opts.jobs workers; the tables are identical for every jobs value.
inline void sweep_and_print(std::ostream& os, const std::string& title,
                            const net::ScenarioConfig& scenario,
                            const std::vector<net::StackSpec>& stacks,
                            const std::vector<double>& rates,
                            const BenchOptions& opts,
                            const std::vector<Metric>& metrics,
                            int precision = 3) {
  core::ExperimentConfig cfg;
  cfg.scenario = scenario;
  cfg.runs = opts.runs;
  cfg.base_seed = opts.seed;
  cfg.jobs = opts.jobs;

  core::StackProgressFn progress;
  if (!opts.quiet)
    progress = [&title](const net::StackSpec& s) {
      std::cerr << "  [" << title << "] " << s.label << " done\n";
    };

  // results[stack][rate]
  const auto results = core::sweep_grid(cfg, stacks, rates, progress);

  for (Metric m : metrics) {
    std::vector<std::string> header{"rate (pkt/s)"};
    for (const auto& s : stacks) header.push_back(s.label);
    Table t(std::move(header));
    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
      std::vector<std::string> row{Table::num(rates[ri], 1)};
      for (std::size_t si = 0; si < stacks.size(); ++si) {
        const auto stats = pick(results[si][ri], m);
        row.push_back(
            Table::num_ci(stats.mean, stats.ci95_half_width, precision));
      }
      t.add_row(std::move(row));
    }
    print_table(os, title + " — " + metric_name(m), t);
  }
}

inline std::vector<double> parse_rates(const Flags& flags,
                                       std::vector<double> def) {
  if (!flags.has("rates")) return def;
  std::vector<double> out;
  const std::string s = flags.get("rates", "");
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(std::stod(s.substr(pos, next - pos)));
    pos = next + 1;
  }
  return out;
}

}  // namespace eend::bench
