// Design-search portfolio benchmark (the §3 problem at scale).
//
// Drives the manifest engine's `design` kind — exactly the code path
// `eend_run` and the golden suite exercise — over random fields at the
// §5.2.2 density, one series per registered heuristic, and reports each
// heuristic's Eq. 5 cost, gap vs. the Klein-Ravi baseline, and wall time:
// the cost/quality frontier of search effort over the one-shot
// approximations the paper discusses. The engine enforces the portfolio
// invariant (cost <= Klein-Ravi on every instance); this bench re-asserts
// it from the emitted rows before writing anything.
//
// Three legs per invocation:
//   1. the dense family with presolve off (the historical baseline);
//   2. the same family with presolve on — results must be *identical*
//      (asserted row by row; the reductions are provably lossless), so the
//      only difference is wall time, reported side by side;
//   3. a sparse shrink family (field_scale 2.0, where dead ends / long
//      edges / chains actually fire) with the certified-bound columns —
//      reduction percentages land in the JSON and `--assert-min-shrink-pct`
//      turns them into a CI floor.
//
// Emits machine-readable JSON (default BENCH_design_portfolio.json;
// --json= overrides, "none" disables) to extend the BENCH_*.json perf
// trajectory, plus the engine's pivot tables on stdout.
//
// Flags: --quick (N in {50,100,200}; full adds {500,1000,2000}),
//        --demands=N, --starts=N, --anneal-iters=N, --reps=N (instances
//        per size), --jobs=N, --seed=S, --json=PATH, --quiet,
//        --assert-min-shrink-pct=P (fail unless every shrink-family size
//        drops >= P% of its nodes; 0 disables).
#include <fstream>
#include <iostream>
#include <vector>

#include "core/experiment_engine.hpp"
#include "core/result_sink.hpp"
#include "opt/design_heuristic.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"

namespace {

using namespace eend;

/// Buffers every row so the JSON artifact can pivot them after the run.
class CollectSink final : public core::ResultSink {
 public:
  void row(const core::ResultRow& r) override { rows.push_back(r); }
  std::vector<core::ResultRow> rows;
};

double metric_mean(const core::ResultRow& r, const std::string& name) {
  for (const core::MetricValue& m : r.metrics)
    if (m.name == name) return m.mean;
  std::cerr << "bench_design_portfolio: row lacks metric " << name << "\n";
  std::exit(1);
}

std::vector<core::ResultRow> run_experiment(const core::Experiment& e,
                                            const core::EngineOptions& opts) {
  core::ExperimentEngine engine(opts);
  CollectSink collect;
  core::TableSink table(std::cout);
  engine.add_sink(collect);
  engine.add_sink(table);
  engine.run(e);
  return std::move(collect.rows);
}

const core::ResultRow& row_at(const std::vector<core::ResultRow>& rows,
                              const std::string& series, double x) {
  for (const core::ResultRow& r : rows)
    if (r.series == series && r.x == x) return r;
  std::cerr << "bench_design_portfolio: missing row (" << series << ", "
            << x << ")\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const bool quiet = flags.get_bool("quiet", false);
  const std::string json_path =
      flags.get("json", "BENCH_design_portfolio.json");
  const double min_shrink_pct =
      flags.get_double("assert-min-shrink-pct", 0.0);

  core::Experiment e;
  e.id = "bench";
  e.title = "Design-search portfolio — Eq. 5 cost / gap / wall time";
  e.kind = core::ExperimentKind::Design;
  e.node_counts = {50, 100, 200};
  if (!quick) {
    e.node_counts.push_back(500);
    e.node_counts.push_back(1000);
    e.node_counts.push_back(2000);
  }
  // Plain-objective heuristics only: the *_lifetime registry twins need a
  // battery budget and belong to the replay kind (bench_design_replay).
  for (const auto& name : opt::heuristic_names())
    if (!opt::heuristic_uses_battery_budget(name))
      e.heuristics.push_back(name);
  e.demands = static_cast<std::size_t>(flags.get_int("demands", 8));
  e.starts = static_cast<std::size_t>(flags.get_int("starts", 8));
  e.anneal_iters =
      static_cast<std::size_t>(flags.get_int("anneal-iters", 300));
  e.runs = static_cast<std::size_t>(flags.get_int("reps", quick ? 2 : 3));
  e.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  e.metrics = {{"eq5_total", 1},
               {"gap_vs_klein_ravi", 2},
               {"relay_nodes", 1},
               {"wall_time_s", 4}};

  core::EngineOptions opts;
  opts.jobs = static_cast<std::size_t>(flags.get_int("jobs", 1));
  opts.progress = quiet ? nullptr : &std::cerr;

  const std::vector<core::ResultRow> rows = run_experiment(e, opts);

  // Leg 2: identical family, presolve on. Same numbers, less work.
  core::Experiment ep = e;
  ep.title = "Design-search portfolio — presolve on (identical results)";
  ep.presolve = true;
  const std::vector<core::ResultRow> rows_presolve = run_experiment(ep, opts);

  // Re-assert the portfolio guarantee from the user-visible rows (the
  // engine already EEND_CHECKs it per instance; this catches aggregation
  // mistakes too).
  for (const core::ResultRow& r : rows)
    if (r.series == "portfolio" &&
        metric_mean(r, "gap_vs_klein_ravi") > 1e-9) {
      std::cerr << "bench_design_portfolio: portfolio gap "
                << metric_mean(r, "gap_vs_klein_ravi") << "% > 0 at n="
                << r.x << "\n";
      return 1;
    }
  // Presolve soundness at bench scale: every (series, size) mean must be
  // exactly reproduced — the reduced twins replay the same arithmetic.
  for (const core::ResultRow& r : rows) {
    const core::ResultRow& p = row_at(rows_presolve, r.series, r.x);
    for (const char* m : {"eq5_total", "gap_vs_klein_ravi", "relay_nodes"})
      if (metric_mean(r, m) != metric_mean(p, m)) {
        std::cerr << "bench_design_portfolio: presolve changed " << m
                  << " for (" << r.series << ", n=" << r.x << "): "
                  << metric_mean(r, m) << " -> " << metric_mean(p, m)
                  << "\n";
        return 1;
      }
  }

  // Leg 3: sparse shrink family with certified bounds. field_scale 2.0
  // quarters the density — the regime where the reductions fire — and the
  // sizes stay small: this leg demonstrates shrink, not scaling.
  core::Experiment es = e;
  es.title = "Design-search portfolio — sparse shrink family (presolve)";
  es.presolve = true;
  es.field_scale = 2.0;
  es.node_counts = {50, 100, 200};
  es.heuristics = {"klein_ravi", "kmb", "portfolio"};
  es.metrics = {{"eq5_total", 1},
                {"lb", 1},
                {"certified_gap_pct", 2},
                {"reduced_nodes", 1},
                {"reduced_edges", 1},
                {"wall_time_s", 4}};
  const std::vector<core::ResultRow> rows_sparse = run_experiment(es, opts);

  for (const std::size_t n : es.node_counts) {
    const core::ResultRow& r =
        row_at(rows_sparse, "portfolio", static_cast<double>(n));
    const double shrink_pct =
        100.0 * metric_mean(r, "reduced_nodes") / static_cast<double>(n);
    if (min_shrink_pct > 0.0 && shrink_pct < min_shrink_pct) {
      std::cerr << "bench_design_portfolio: shrink " << shrink_pct
                << "% at n=" << n << " below required " << min_shrink_pct
                << "%\n";
      return 1;
    }
  }

  if (json_path != "none") {
    json::Array sizes_json;
    for (const std::size_t n : e.node_counts) {
      json::Array heur;
      for (const core::ResultRow& r : rows) {
        if (r.x != static_cast<double>(n)) continue;
        const core::ResultRow& p = row_at(rows_presolve, r.series, r.x);
        heur.push_back(json::Object{
            {"name", json::Value(r.series)},
            {"mean_cost", json::Value(metric_mean(r, "eq5_total"))},
            {"mean_gap_vs_klein_ravi_pct",
             json::Value(metric_mean(r, "gap_vs_klein_ravi"))},
            {"mean_seconds", json::Value(metric_mean(r, "wall_time_s"))},
            {"mean_seconds_presolve",
             json::Value(metric_mean(p, "wall_time_s"))}});
      }
      sizes_json.push_back(json::Object{
          {"n", json::Value(static_cast<double>(n))},
          {"reps", json::Value(static_cast<double>(e.runs))},
          {"heuristics", json::Value(std::move(heur))}});
    }
    json::Array shrink_json;
    for (const std::size_t n : es.node_counts) {
      const core::ResultRow& r =
          row_at(rows_sparse, "portfolio", static_cast<double>(n));
      shrink_json.push_back(json::Object{
          {"n", json::Value(static_cast<double>(n))},
          {"mean_reduced_nodes",
           json::Value(metric_mean(r, "reduced_nodes"))},
          {"mean_reduced_edges",
           json::Value(metric_mean(r, "reduced_edges"))},
          {"shrink_nodes_pct",
           json::Value(100.0 * metric_mean(r, "reduced_nodes") /
                       static_cast<double>(n))},
          {"mean_lb", json::Value(metric_mean(r, "lb"))},
          {"mean_certified_gap_pct",
           json::Value(metric_mean(r, "certified_gap_pct"))}});
    }
    const json::Object doc{
        {"bench", json::Value(std::string("design_portfolio"))},
        {"quick", json::Value(quick)},
        {"seed", json::Value(static_cast<double>(e.seed))},
        {"demands", json::Value(static_cast<double>(e.demands))},
        {"starts", json::Value(static_cast<double>(e.starts))},
        {"anneal_iterations",
         json::Value(static_cast<double>(e.anneal_iters))},
        {"jobs", json::Value(static_cast<double>(opts.jobs))},
        {"sizes", json::Value(std::move(sizes_json))},
        {"presolve_shrink",
         json::Value(json::Object{
             {"field_scale", json::Value(es.field_scale)},
             {"min_shrink_pct_asserted", json::Value(min_shrink_pct)},
             {"sizes", json::Value(std::move(shrink_json))}})}};
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "bench_design_portfolio: cannot open " << json_path
                << "\n";
      return 1;
    }
    out << json::dump(json::Value(doc), 2) << "\n";
    if (!quiet) std::cerr << "wrote " << json_path << "\n";
  }
  return 0;
}
