// Extension bench — network lifetime under finite batteries.
//
// The paper's conclusion defers lifetime to future work ("minimizing
// instantaneous network energy consumption ... does not necessarily
// translate into longer network lifetime"). This bench implements that
// study: every node gets the same battery; we report the time to first
// depletion, the number of dead nodes at the end, and the delivery ratio
// — showing how the three heuristics rank when longevity matters.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);

  auto scenario = net::ScenarioConfig::small_network();
  scenario.rate_pps = flags.get_double("rate", 4.0);
  scenario.duration_s = quick ? 200.0 : 900.0;
  // Cabletron idles at 0.83 W: a 300 J budget kills an always-idle node
  // after ~360 s — mid-run, so the ranking is visible.
  scenario.battery_capacity_j = flags.get_double("battery", 300.0);
  const auto opts = bench::parse_bench_options(flags, 3);

  const std::vector<net::StackSpec> stacks = {
      net::StackSpec::dsr_active(),  net::StackSpec::dsr_odpm(),
      net::StackSpec::dsr_odpm_pc(), net::StackSpec::titan_pc(),
      net::StackSpec::dsrh_odpm_norate(),
      net::StackSpec::dsdvh_odpm_psm()};

  Table t({"stack", "first death (s)", "depleted nodes", "delivery",
           "goodput (bit/J)"});
  for (const auto& stack : stacks) {
    core::ExperimentConfig cfg;
    cfg.scenario = scenario;
    cfg.stack = stack;
    cfg.runs = opts.runs;
    cfg.base_seed = opts.seed;
    cfg.jobs = opts.jobs;
    const auto r = core::run_experiment(cfg);
    std::vector<double> deaths, depleted;
    for (const auto& raw : r.raw) {
      deaths.push_back(raw.first_death_s < 0 ? scenario.duration_s
                                             : raw.first_death_s);
      depleted.push_back(static_cast<double>(raw.depleted_nodes));
    }
    const auto d = summarize(deaths);
    t.add_row({stack.label, Table::num_ci(d.mean, d.ci95_half_width, 0),
               Table::num(summarize(depleted).mean, 1),
               Table::num(r.delivery_ratio.mean, 3),
               Table::num(r.goodput_bit_per_j.mean, 1)});
    if (!opts.quiet)
      std::cerr << "  [lifetime] " << stack.label << " done\n";
  }
  print_table(std::cout,
              "Extension — network lifetime with " +
                  Table::num(scenario.battery_capacity_j, 0) +
                  " J batteries (50 nodes, 500x500 m^2)",
              t);
  std::cout << "\nReading: idle-first power management extends time-to-first-"
               "death by\nkeeping most radios asleep; always-active burns "
               "every battery in lockstep;\nDSDVH's update churn drains even "
               "non-relay nodes.\n";
  return 0;
}
