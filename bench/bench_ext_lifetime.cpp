// Extension bench — network lifetime under finite batteries.
//
// The paper's conclusion defers lifetime to future work ("minimizing
// instantaneous network energy consumption ... does not necessarily
// translate into longer network lifetime"). This bench implements that
// study: every node gets the same battery; we report the time to first
// depletion, the number of dead nodes at the end, and the delivery ratio
// — showing how the three heuristics rank when longevity matters.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);

  auto scenario = net::ScenarioConfig::small_network();
  scenario.rate_pps = flags.get_double("rate", 4.0);
  scenario.duration_s = quick ? 200.0 : 900.0;
  // Cabletron idles at 0.83 W: a 300 J budget kills an always-idle node
  // after ~360 s — mid-run, so the ranking is visible.
  scenario.battery_capacity_j = flags.get_double("battery", 300.0);
  const auto runs = static_cast<std::size_t>(
      flags.get_int("runs", quick ? 1 : 3));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  const std::vector<net::StackSpec> stacks = {
      net::StackSpec::dsr_active(),  net::StackSpec::dsr_odpm(),
      net::StackSpec::dsr_odpm_pc(), net::StackSpec::titan_pc(),
      net::StackSpec::dsrh_odpm_norate(),
      net::StackSpec::dsdvh_odpm_psm()};

  Table t({"stack", "first death (s)", "depleted nodes", "delivery",
           "goodput (bit/J)"});
  for (const auto& stack : stacks) {
    std::vector<double> deaths, depleted, delivery, goodput;
    for (std::size_t i = 0; i < runs; ++i) {
      auto sc = scenario;
      sc.seed = seed + i;
      net::Network n(sc, stack);
      const auto r = n.run();
      deaths.push_back(r.first_death_s < 0 ? sc.duration_s
                                           : r.first_death_s);
      depleted.push_back(static_cast<double>(r.depleted_nodes));
      delivery.push_back(r.delivery_ratio);
      goodput.push_back(r.goodput_bit_per_j);
    }
    const auto d = summarize(deaths);
    t.add_row({stack.label, Table::num_ci(d.mean, d.ci95_half_width, 0),
               Table::num(summarize(depleted).mean, 1),
               Table::num(summarize(delivery).mean, 3),
               Table::num(summarize(goodput).mean, 1)});
    std::cerr << "  [lifetime] " << stack.label << " done\n";
  }
  print_table(std::cout,
              "Extension — network lifetime with " +
                  Table::num(scenario.battery_capacity_j, 0) +
                  " J batteries (50 nodes, 500x500 m^2)",
              t);
  std::cout << "\nReading: idle-first power management extends time-to-first-"
               "death by\nkeeping most radios asleep; always-active burns "
               "every battery in lockstep;\nDSDVH's update churn drains even "
               "non-relay nodes.\n";
  return 0;
}
