// Micro-benchmarks (google-benchmark): simulator event throughput, graph
// algorithms, channel transmission path, energy metering. These guard the
// performance envelope that makes the 200-node/900-second figure benches
// run in seconds.
#include <benchmark/benchmark.h>

#include "graph/shortest_path.hpp"
#include "graph/steiner.hpp"
#include "mac/channel.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace eend;

void BM_SimulatorScheduleExecute(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1000; ++i)
      s.schedule_at(static_cast<double>(i % 97), [] {});
    s.run_all();
    benchmark::DoNotOptimize(s.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleExecute);

void BM_TimerRestartChurn(benchmark::State& state) {
  sim::Simulator s;
  sim::Timer t(s, [] {});
  for (auto _ : state) {
    t.restart(1.0);
    benchmark::DoNotOptimize(t.armed());
  }
}
BENCHMARK(BM_TimerRestartChurn);

graph::Graph random_graph(std::size_t n, std::size_t extra, Rng& rng) {
  graph::Graph g(n);
  for (graph::NodeId v = 0; v + 1 < n; ++v)
    g.add_edge(v, v + 1, rng.uniform(0.1, 3.0));
  for (std::size_t i = 0; i < extra; ++i) {
    const auto a = static_cast<graph::NodeId>(rng.next_below(n));
    const auto b = static_cast<graph::NodeId>(rng.next_below(n));
    if (a != b) g.add_edge(a, b, rng.uniform(0.1, 3.0));
  }
  return g;
}

void BM_Dijkstra(benchmark::State& state) {
  Rng rng(7);
  const auto g = random_graph(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(0)) * 3,
                              rng);
  for (auto _ : state) {
    const auto t = graph::dijkstra(g, 0);
    benchmark::DoNotOptimize(t.distance.back());
  }
}
BENCHMARK(BM_Dijkstra)->Arg(64)->Arg(256)->Arg(1024);

void BM_KmbSteiner(benchmark::State& state) {
  Rng rng(11);
  const auto g = random_graph(128, 384, rng);
  const std::vector<graph::NodeId> terms{1, 40, 80, 120};
  for (auto _ : state) {
    const auto t = graph::kmb_steiner_tree(g, terms);
    benchmark::DoNotOptimize(t.edge_cost);
  }
}
BENCHMARK(BM_KmbSteiner);

void BM_EnergyMeterTransitions(benchmark::State& state) {
  const auto card = energy::cabletron();
  for (auto _ : state) {
    energy::EnergyMeter m(card);
    double now = 0.0;
    m.begin(now, energy::RadioMode::Idle);
    for (int i = 0; i < 100; ++i) {
      now += 0.001;
      m.set_transmit(now, 1.4, energy::Category::Data);
      now += 0.001;
      m.set_passive_mode(now, energy::RadioMode::Idle);
    }
    m.finish(now + 1.0);
    benchmark::DoNotOptimize(m.total());
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_EnergyMeterTransitions);

void BM_FullSmallNetworkRun(benchmark::State& state) {
  for (auto _ : state) {
    net::ScenarioConfig sc = net::ScenarioConfig::small_network();
    sc.duration_s = 60.0;
    sc.seed = 3;
    net::Network n(sc, net::StackSpec::titan_pc());
    const auto r = n.run();
    benchmark::DoNotOptimize(r.total_energy_j);
  }
}
BENCHMARK(BM_FullSmallNetworkRun)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
