// Event-core throughput benchmark: ladder-queue Simulator vs the frozen
// pre-PR binary-heap engine (sim/baseline_simulator.hpp), measured in the
// same run so the speedup is anchored, not compared across machines.
//
// Workloads are churn-shaped — the regime the engine actually sees — not
// the schedule-1000-empty-closures-upfront microloop this file used to
// contain:
//
//   * churn          — waves of long-horizon keep-alive/route-lifetime
//                      timers (32-byte captures) where 95% are cancelled
//                      before firing (the ODPM/PSM refresh idiom), over a
//                      deep backlog of survivors; ops = schedule + cancel +
//                      fire.
//   * fifo_burst     — mixed-horizon schedule/drain with no cancels: the
//                      pure ordering path, including far-future overflow.
//   * timer_restart  — Timer::restart() churn, the cancel+schedule pair
//                      every keep-alive touch performs.
//   * network (info) — a full net::Network protocol-stack run; ops/s =
//                      Simulator::executed_events() / wall time. Ladder
//                      engine only (the stack is written against it), so
//                      no speedup column — it anchors the micro numbers to
//                      the real workload.
//
// Emits BENCH_simcore.json (--json= overrides, "none" disables) and a
// human table. Self-asserting: --assert-churn-speedup=X and
// --assert-churn-events-per-s=Y make the binary exit non-zero when the
// churn workload misses the floor — the CI release leg runs with both.
//
// Flags: --quick, --quiet, --reps=N, --seed=S, --json=PATH,
//        --assert-churn-speedup=X, --assert-churn-events-per-s=Y.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/scenario.hpp"
#include "net/stack.hpp"
#include "obs/obs.hpp"
#include "sim/baseline_simulator.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace eend;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct WorkloadResult {
  std::string name;
  double ladder_ops_per_s = 0.0;
  double baseline_ops_per_s = 0.0;  ///< 0 = workload has no baseline leg
  double speedup = 0.0;
  std::uint64_t ops = 0;  ///< per run (both engines execute the same ops)
};

// ---------------------------------------------------------------- churn ---
// The keep-alive / route-lifetime refresh idiom: every touch of a route
// (or a PSM neighbor) cancels its long-horizon expiry timer and schedules
// a fresh one, so in steady state ~95% of scheduled timers are cancelled
// before they fire and a deep backlog of still-armed survivors accrues.
// The capture mirrors the real handlers: this-pointer plus the context
// they carry (neighbor id, deadline, attempt counter) — 32 bytes, past the
// old engine's std::function SSO but inline in the slot map.
struct KeepAliveCtx {
  void* self;
  std::uint64_t neighbor;
  double deadline;
  std::uint32_t attempt;
};

template <typename Sim>
std::uint64_t run_churn(Sim& s, int waves, std::uint64_t seed) {
  Rng rng(seed);
  std::uint64_t ops = 0;
  std::vector<std::uint64_t> wave;  // both engines' EventId is uint64
  static std::uint64_t sink = 0;    // per-instantiation, defeats DCE
  for (int round = 0; round < waves; ++round) {
    wave.clear();
    for (int i = 0; i < 5000; ++i) {
      const KeepAliveCtx ctx{&s, static_cast<std::uint64_t>(i),
                             s.now() + 100000.0,
                             static_cast<std::uint32_t>(round)};
      wave.push_back(s.schedule_in(rng.uniform(0.1, 100000.0),
                                   [ctx] { sink += ctx.neighbor; }));
      ++ops;
    }
    for (int i = 0; i < 5000; ++i) {
      if (i % 20 != 0) {  // 1-in-20 survives to (eventually) expire
        s.cancel(wave[static_cast<std::size_t>(i)]);
        ++ops;
      }
    }
    s.run_until(s.now() + 5.0);
  }
  s.run_all();
  return ops + s.executed_events();
}

// ----------------------------------------------------------- fifo burst ---
// Mixed horizons, no cancels: 70% dense near-future, 20% mid, 10% far
// future (the overflow top rung / deep heap respectively).
template <typename Sim>
std::uint64_t run_fifo_burst(Sim& s, int bursts, std::uint64_t seed) {
  Rng rng(seed);
  std::uint64_t ops = 0;
  int sink = 0;
  for (int round = 0; round < bursts; ++round) {
    for (int i = 0; i < 200; ++i) {
      const double u = rng.uniform();
      const double delay = u < 0.7   ? rng.uniform(0.0, 2.0)
                           : u < 0.9 ? rng.uniform(0.0, 100.0)
                                     : rng.uniform(0.0, 20000.0);
      s.schedule_in(delay, [&sink] { ++sink; });
      ++ops;
    }
    s.run_until(s.now() + 10.0);
  }
  s.run_all();
  return ops + s.executed_events();
}

// -------------------------------------------------------- timer restart ---
template <typename SimT, typename TimerT>
std::uint64_t run_timer_restart(SimT& s, int touches) {
  int expired = 0;
  std::vector<std::unique_ptr<TimerT>> timers;
  for (int i = 0; i < 32; ++i)
    timers.push_back(
        std::make_unique<TimerT>(s, [&expired] { ++expired; }));
  std::uint64_t ops = 0;
  for (int t = 0; t < touches; ++t) {
    timers[static_cast<std::size_t>(t) % timers.size()]->restart(2.0);
    ++ops;
    if (t % 16 == 0) s.run_until(s.now() + 0.1);
  }
  s.run_all();
  return ops + s.executed_events();
}

template <typename Fn>
double best_of(int reps, std::uint64_t& ops_out, Fn run) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    ops_out = run();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

template <typename LadderFn, typename BaselineFn>
WorkloadResult run_pair(const std::string& name, int reps, LadderFn lf,
                        BaselineFn bf) {
  WorkloadResult r;
  r.name = name;
  const double tl = best_of(reps, r.ops, lf);
  std::uint64_t ops_b = 0;
  const double tb = best_of(reps, ops_b, bf);
  EEND_REQUIRE_MSG(ops_b == r.ops,
                   "engines diverged on op count for " << name);
  r.ladder_ops_per_s = static_cast<double>(r.ops) / tl;
  r.baseline_ops_per_s = static_cast<double>(r.ops) / tb;
  r.speedup = r.ladder_ops_per_s / r.baseline_ops_per_s;
  return r;
}

WorkloadResult bench_network(int reps, bool quick) {
  // End-to-end anchor: a DSDVH-ODPM-PSM stack (timer-heavy — keep-alives,
  // beacons, periodic dumps) on the paper's small-network scenario.
  WorkloadResult r;
  r.name = "network";
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    net::ScenarioConfig sc = net::ScenarioConfig::small_network();
    sc.duration_s = quick ? 60.0 : 200.0;
    net::Network net(sc, net::StackSpec::dsdvh_odpm_psm());
    const auto t0 = std::chrono::steady_clock::now();
    (void)net.run();
    const double t = seconds_since(t0);
    if (t < best) {
      best = t;
      r.ops = net.simulator().executed_events();
    }
  }
  r.ladder_ops_per_s = static_cast<double>(r.ops) / best;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const bool quiet = flags.get_bool("quiet", false);
  const int reps = static_cast<int>(flags.get_int("reps", quick ? 3 : 7));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string json_path = flags.get("json", "BENCH_simcore.json");
  const double floor_speedup = flags.get_double("assert-churn-speedup", 0.0);
  const double floor_eps = flags.get_double("assert-churn-events-per-s", 0.0);

  const int waves = quick ? 40 : 200;
  const int bursts = quick ? 100 : 500;
  const int touches = quick ? 20000 : 100000;

  std::vector<WorkloadResult> results;
  results.push_back(run_pair(
      "churn", reps,
      [&] {
        sim::Simulator s;
        return run_churn(s, waves, seed);
      },
      [&] {
        sim::BaselineSimulator s;
        return run_churn(s, waves, seed);
      }));
  if (!quiet) std::cerr << "  churn done\n";
  results.push_back(run_pair(
      "fifo_burst", reps,
      [&] {
        sim::Simulator s;
        return run_fifo_burst(s, bursts, seed);
      },
      [&] {
        sim::BaselineSimulator s;
        return run_fifo_burst(s, bursts, seed);
      }));
  if (!quiet) std::cerr << "  fifo_burst done\n";
  results.push_back(run_pair(
      "timer_restart", reps,
      [&] {
        sim::Simulator s;
        return run_timer_restart<sim::Simulator, sim::Timer>(s, touches);
      },
      [&] {
        sim::BaselineSimulator s;
        return run_timer_restart<sim::BaselineSimulator,
                                 sim::BaselineTimer>(s, touches);
      }));
  if (!quiet) std::cerr << "  timer_restart done\n";
  results.push_back(bench_network(quick ? 1 : 2, quick));
  if (!quiet) std::cerr << "  network done\n";

  Table t({"workload", "ops/run", "ladder ops/s", "heap ops/s", "speedup"});
  for (const WorkloadResult& r : results)
    t.add_row({r.name, format_u64(r.ops), Table::num(r.ladder_ops_per_s, 0),
               r.baseline_ops_per_s > 0.0
                   ? Table::num(r.baseline_ops_per_s, 0)
                   : std::string("-"),
               r.speedup > 0.0 ? Table::num(r.speedup, 2)
                               : std::string("-")});
  print_table(std::cout,
              "Event core — ladder-queue Simulator vs pre-PR binary heap",
              t);

  if (json_path != "none") {
    json::Array arr;
    for (const WorkloadResult& r : results) {
      json::Object o;
      o.emplace_back("workload", r.name);
      o.emplace_back("ops_per_run", static_cast<double>(r.ops));
      o.emplace_back("ladder_ops_per_s", r.ladder_ops_per_s);
      o.emplace_back("baseline_ops_per_s", r.baseline_ops_per_s);
      o.emplace_back("speedup", r.speedup);
      arr.emplace_back(std::move(o));
    }
    json::Object top;
    top.emplace_back("bench", std::string("simcore"));
    top.emplace_back("seed", static_cast<double>(seed));
    top.emplace_back("reps", static_cast<double>(reps));
    // Whether telemetry was compiled in, so the CI on/off trajectories
    // (BENCH_simcore.json vs BENCH_simcore_noobs.json) are self-labeling.
    top.emplace_back("obs_enabled", obs::kEnabled);
    top.emplace_back("results", std::move(arr));
    std::ofstream out(json_path, std::ios::binary);
    EEND_REQUIRE_MSG(out, "cannot write " << json_path);
    out << json::dump(json::Value(std::move(top)), 2) << "\n";
    if (!quiet) std::cerr << "  wrote " << json_path << "\n";
  }

  // CI floors: conservative bounds (well under measured numbers) that
  // still catch an accidental return to heap-scheduler scaling.
  const WorkloadResult& churn = results.front();
  bool ok = true;
  if (floor_speedup > 0.0 && churn.speedup < floor_speedup) {
    std::cerr << "FLOOR VIOLATION: churn speedup " << churn.speedup << " < "
              << floor_speedup << "\n";
    ok = false;
  }
  if (floor_eps > 0.0 && churn.ladder_ops_per_s < floor_eps) {
    std::cerr << "FLOOR VIOLATION: churn ladder ops/s "
              << churn.ladder_ops_per_s << " < " << floor_eps << "\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
