// Figure 14 — energy goodput for low traffic rates (2-5 pkt/s) on the 7x7
// hypothetical-Cabletron grid with ODPM sleep scheduling.
//
// Shape target: everyone drops well below the perfect-scheduling levels of
// Fig. 13 (active nodes idle at Pidle awaiting traffic); TITAN-PC leads
// because it concentrates flows on the fewest relays.
#include "bench_grid_common.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const std::vector<net::StackSpec> stacks = {
      net::StackSpec::titan_pc(),
      net::StackSpec::dsrh_odpm_norate(),
      net::StackSpec::mtpr_odpm(),
      net::StackSpec::mtpr_plus_odpm(),
      net::StackSpec::dsr_odpm(),
      net::StackSpec::dsr_active()};
  bench::run_grid_figure(
      "Figure 14 — hypothetical card, low rates, ODPM scheduling", stacks,
      {2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0}, flags);
  return 0;
}
