// Figure 13 — energy goodput for low traffic rates (2-5 pkt/s) on the 7x7
// hypothetical-Cabletron grid with PERFECT sleep scheduling.
//
// Shape target: all stacks cluster together (sleep power dominates and is
// identical); only DSR-Active — which idles instead of sleeping — sits far
// below. Goodput rises roughly linearly with rate.
#include "bench_grid_common.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const std::vector<net::StackSpec> stacks = {
      net::StackSpec::titan_pc_perfect(),
      net::StackSpec::dsrh_norate_perfect(),
      net::StackSpec::mtpr_perfect(),
      net::StackSpec::mtpr_plus_perfect(),
      net::StackSpec::dsr_perfect(),
      net::StackSpec::dsr_active()};
  bench::run_grid_figure(
      "Figure 13 — hypothetical card, low rates, perfect sleep scheduling",
      stacks, {2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0}, flags);
  return 0;
}
