// Ablation bench — the design choices DESIGN.md calls out:
//   1. TITAN probabilistic participation (alpha) sweep;
//   2. ODPM keep-alive timers: (5, 10) vs (0.6, 1.2);
//   3. Span-improved PSM vs naive PSM under DSDVH;
//   4. interference footprint scaling with TPC on/off;
//   5. DSRH rate vs norate (value of rate information).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const auto opts = bench::parse_bench_options(flags, 3);
  const bool quick = opts.quick;
  const auto runs = opts.runs;
  const auto seed = opts.seed;

  auto scenario = net::ScenarioConfig::small_network();
  scenario.rate_pps = 4.0;
  if (quick) scenario.duration_s = 120.0;

  auto run_one = [&](const net::StackSpec& stack) {
    core::ExperimentConfig cfg;
    cfg.scenario = scenario;
    cfg.stack = stack;
    cfg.runs = runs;
    cfg.base_seed = seed;
    cfg.jobs = opts.jobs;
    return core::run_experiment(cfg);
  };

  // 1. TITAN participation scale.
  {
    Table t({"titan alpha", "delivery", "goodput (bit/J)", "RREQ tx"});
    // alpha is baked into ReactiveConfig via the stack; emulate by scaling
    // through dedicated stacks run at network level: participation is
    // controlled in routing config, so use the large net where it matters.
    auto sc = net::ScenarioConfig::large_network();
    sc.rate_pps = 4.0;
    if (quick) sc.duration_s = 120.0;
    for (double alpha : {0.5, 1.0, 2.0}) {
      net::StackSpec s = net::StackSpec::titan_pc();
      s.label = "TITAN(alpha=" + Table::num(alpha, 1) + ")";
      s.titan_alpha = alpha;
      core::ExperimentConfig cfg;
      cfg.scenario = sc;
      cfg.stack = s;
      cfg.runs = runs;
      cfg.base_seed = seed;
      cfg.jobs = opts.jobs;
      const auto r = core::run_experiment(cfg);
      double rreq = 0;
      for (const auto& raw : r.raw)
        rreq += static_cast<double>(raw.rreq_transmissions);
      t.add_row({Table::num(alpha, 1),
                 Table::num(r.delivery_ratio.mean, 3),
                 Table::num(r.goodput_bit_per_j.mean, 1),
                 Table::num(rreq / static_cast<double>(r.raw.size()), 0)});
    }
    print_table(std::cout, "Ablation 1 — TITAN participation (large net)", t);
  }

  // 2+3. ODPM keep-alives and PSM improvements under DSDVH.
  {
    Table t({"variant", "delivery", "goodput (bit/J)", "passive (J)"});
    for (const auto& stack :
         {net::StackSpec::dsdvh_odpm_psm(), net::StackSpec::dsdvh_odpm_span()}) {
      const auto r = run_one(stack);
      t.add_row({stack.label, Table::num(r.delivery_ratio.mean, 3),
                 Table::num(r.goodput_bit_per_j.mean, 1),
                 Table::num(r.passive_energy_j.mean, 0)});
    }
    // Cross: naive PSM with short keep-alives.
    net::StackSpec cross = net::StackSpec::dsdvh_odpm_span();
    cross.label = "DSDVH-ODPM(0.6,1.2)-PSM";
    cross.psm.span_improvements = false;
    const auto r = run_one(cross);
    t.add_row({cross.label, Table::num(r.delivery_ratio.mean, 3),
               Table::num(r.goodput_bit_per_j.mean, 1),
               Table::num(r.passive_energy_j.mean, 0)});
    print_table(std::cout,
                "Ablation 2/3 — keep-alive timers and Span PSM improvements",
                t);
  }

  // 4. Interference footprint scaling.
  {
    Table t({"footprint model", "delivery", "goodput (bit/J)",
             "collisions"});
    for (bool scale : {true, false}) {
      auto sc = scenario;
      sc.prop.scale_footprint_with_power = scale;
      core::ExperimentConfig cfg;
      cfg.scenario = sc;
      cfg.stack = net::StackSpec::titan_pc();
      cfg.runs = runs;
      cfg.base_seed = seed;
      cfg.jobs = opts.jobs;
      const auto r = core::run_experiment(cfg);
      double coll = 0;
      for (const auto& raw : r.raw)
        coll += static_cast<double>(raw.mac_collisions);
      t.add_row({scale ? "scaled with TPC power" : "fixed at max range",
                 Table::num(r.delivery_ratio.mean, 3),
                 Table::num(r.goodput_bit_per_j.mean, 1),
                 Table::num(coll / static_cast<double>(r.raw.size()), 0)});
    }
    print_table(std::cout,
                "Ablation 4 — interference footprint vs TPC (TITAN-PC)", t);
  }

  // 5. DSRH rate information.
  {
    Table t({"variant", "delivery", "goodput (bit/J)"});
    for (const auto& stack : {net::StackSpec::dsrh_odpm_rate(),
                              net::StackSpec::dsrh_odpm_norate()}) {
      const auto r = run_one(stack);
      t.add_row({stack.label, Table::num(r.delivery_ratio.mean, 3),
                 Table::num(r.goodput_bit_per_j.mean, 1)});
    }
    print_table(std::cout, "Ablation 5 — value of rate information in h()",
                t);
  }
  return 0;
}
