// Centralized design-problem analysis (§3): build an instance from random
// node positions, place demands, and compare the centralized solvers —
// node-weighted Klein-Ravi vs the MPC-style edge-weight reduction vs plain
// shortest paths — under the Eq. 5 objective.
//
//   ./steiner_analysis --nodes=40 --field=600 --demands=5 --seed=3
#include <iostream>

#include "core/design_problem.hpp"
#include "net/scenario.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);

  net::ScenarioConfig sc;
  sc.node_count = static_cast<std::size_t>(flags.get_int("nodes", 40));
  sc.field_w = sc.field_h = flags.get_double("field", 600.0);
  sc.seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  const auto n_demands =
      static_cast<std::size_t>(flags.get_int("demands", 5));

  const auto positions = net::place_nodes(sc);
  auto problem =
      core::NetworkDesignProblem::from_positions(positions, sc.card);

  Rng rng(sc.seed);
  for (std::size_t i = 0; i < n_demands; ++i) {
    graph::NodeId s, d;
    do {
      s = static_cast<graph::NodeId>(rng.next_below(sc.node_count));
      d = static_cast<graph::NodeId>(rng.next_below(sc.node_count));
    } while (s == d);
    problem.add_demand({s, d, 1.0});
    std::cout << "demand " << i << ": " << s << " -> " << d << "\n";
  }

  analytical::Eq5Params ep;
  ep.t_idle = flags.get_double("t-idle", 1.0);
  ep.t_data_per_packet = flags.get_double("t-data", 0.001);

  Table t({"solver", "tree nodes", "relays (non-terminal)",
           "node cost (W idle)", "Eq.5 idle", "Eq.5 data", "Eq.5 total"});
  auto report = [&](const std::string& name, const graph::SteinerTree& tree) {
    if (!tree.feasible) {
      t.add_row({name, "-", "-", "-", "-", "-", "infeasible"});
      return;
    }
    const auto ev = problem.evaluate_tree(tree, ep);
    t.add_row({name, std::to_string(tree.nodes.size()),
               std::to_string(ev.relay_nodes), Table::num(tree.node_cost, 3),
               Table::num(ev.idle, 3), Table::num(ev.data, 3),
               Table::num(ev.total(), 3)});
  };
  report("Klein-Ravi (node-weighted)", problem.solve_node_weighted());
  report("MPC-style reduction (KMB)", problem.solve_mpc_reduction());
  report("edge-weighted KMB on w(e)", problem.solve_edge_weighted());

  const auto sp = problem.evaluate_shortest_paths(ep);
  t.add_row({"global shortest paths", "-", std::to_string(sp.relay_nodes),
             "-", Table::num(sp.idle, 3), Table::num(sp.data, 3),
             Table::num(sp.total(), 3)});

  std::cout << '\n' << t.to_text();
  std::cout << "\nReading: the node-weighted solver minimizes idle cost "
               "(fewest relays);\nthe edge-weighted solver minimizes "
               "communication cost; Section 3's point is\nthat neither alone "
               "minimizes E_network — compare the Eq.5 totals.\n";
  return 0;
}
