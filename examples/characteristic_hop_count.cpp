// Characteristic-hop-count analysis tool (the §5.1 / Fig. 7 analysis as a
// CLI): for a given card (or custom parameters), report whether relaying
// between two in-range nodes can ever save energy.
//
//   ./characteristic_hop_count --card=Cabletron --distance=250
//   ./characteristic_hop_count --pidle-mw=830 --prx-mw=1000
//       --pbase-mw=1118 --alpha2-mw=5.2e-6 --n=4 --distance=250
#include <iostream>

#include "analytical/route_energy.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);

  energy::RadioCard card;
  if (flags.has("card")) {
    card = energy::card_by_name(flags.get("card", "Cabletron"));
  } else {
    card.name = "custom";
    card.p_idle = milliwatts(flags.get_double("pidle-mw", 830));
    card.p_rx = milliwatts(flags.get_double("prx-mw", 1000));
    card.p_base = milliwatts(flags.get_double("pbase-mw", 1118));
    card.alpha2 = milliwatts(flags.get_double("alpha2-mw", 7.2e-8));
    card.path_loss_n = flags.get_double("n", 4.0);
    card.max_range_m = flags.get_double("distance", 250.0);
  }
  const double distance = flags.get_double("distance", card.max_range_m);

  std::cout << "Card: " << card.name << "  (Pidle "
            << as_milliwatts(card.p_idle) << " mW, Prx "
            << as_milliwatts(card.p_rx) << " mW, Ptx(d) = "
            << as_milliwatts(card.p_base) << " + "
            << as_milliwatts(card.alpha2) << " * d^" << card.path_loss_n
            << " mW)\nEnd-to-end distance D = " << distance << " m\n\n";

  Table t({"R/B", "m_opt (continuous)", "char. hop count",
           "best integer (brute force)", "route power @best (W)",
           "relays save energy?"});
  for (double rb = 0.05; rb <= 0.5 + 1e-9; rb += 0.05) {
    const double m = analytical::mopt_continuous(card, distance, rb);
    const int c = analytical::characteristic_hop_count(card, distance, rb);
    const int b = analytical::brute_force_best_hops(card, distance, rb);
    t.add_row({Table::num(rb, 2), Table::num(m, 3), std::to_string(c),
               std::to_string(b),
               Table::num(analytical::route_power(card, b, distance, rb), 3),
               analytical::relays_save_energy(card, distance, rb) ? "YES"
                                                                  : "no"});
  }
  std::cout << t.to_text();

  std::cout << "\nVerdict: ";
  bool ever = false;
  for (double rb = 0.05; rb <= 0.5; rb += 0.01)
    if (analytical::relays_save_energy(card, distance, rb)) ever = true;
  if (ever)
    std::cout << "this card CAN profit from relays at some utilizations —\n"
                 "power-control-first design (MTPR/PARO) is meaningful here.\n";
  else
    std::cout << "relaying between two in-range nodes never saves energy on\n"
                 "this card (the paper's conclusion for every card surveyed).\n";
  return 0;
}
