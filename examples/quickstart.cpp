// Quickstart: build the paper's small-network scenario (50 nodes in
// 500x500 m^2, 10 CBR flows), run the TITAN-PC stack, and print the
// evaluation metrics.
//
//   ./quickstart [--nodes N] [--rate PPS] [--duration S] [--seed S]
//                [--stack titan-pc|dsr-active|dsr-odpm|dsr-odpm-pc|...]
#include <iostream>

#include "net/network.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

eend::net::StackSpec stack_by_name(const std::string& name) {
  using eend::net::StackSpec;
  if (name == "dsr-active") return StackSpec::dsr_active();
  if (name == "dsr-odpm") return StackSpec::dsr_odpm();
  if (name == "dsr-odpm-pc") return StackSpec::dsr_odpm_pc();
  if (name == "titan-pc") return StackSpec::titan_pc();
  if (name == "dsrh-rate") return StackSpec::dsrh_odpm_rate();
  if (name == "dsrh-norate") return StackSpec::dsrh_odpm_norate();
  if (name == "dsdvh-psm") return StackSpec::dsdvh_odpm_psm();
  if (name == "dsdvh-span") return StackSpec::dsdvh_odpm_span();
  if (name == "mtpr") return StackSpec::mtpr_odpm();
  if (name == "mtpr+") return StackSpec::mtpr_plus_odpm();
  std::cerr << "unknown stack '" << name << "', using titan-pc\n";
  return StackSpec::titan_pc();
}

}  // namespace

int main(int argc, char** argv) {
  const eend::Flags flags(argc, argv);

  eend::net::ScenarioConfig scenario =
      eend::net::ScenarioConfig::small_network();
  scenario.node_count =
      static_cast<std::size_t>(flags.get_int("nodes", 50));
  scenario.rate_pps = flags.get_double("rate", 2.0);
  scenario.duration_s = flags.get_double("duration", 900.0);
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  scenario.flow_count =
      static_cast<std::size_t>(flags.get_int("flows", 10));

  const eend::net::StackSpec stack =
      stack_by_name(flags.get("stack", "titan-pc"));

  std::cout << "Scenario: " << scenario.node_count << " nodes, "
            << scenario.field_w << "x" << scenario.field_h << " m^2, "
            << scenario.flow_count << " CBR flows @ " << scenario.rate_pps
            << " pkt/s, " << scenario.duration_s << " s, card "
            << scenario.card.name << "\nStack:    " << stack.label << "\n\n";

  eend::net::Network network(scenario, stack);
  const auto r = network.run();

  eend::Table t({"metric", "value"});
  t.add_row({"packets sent", std::to_string(r.sent)});
  t.add_row({"packets delivered", std::to_string(r.delivered)});
  t.add_row({"delivery ratio", eend::Table::num(r.delivery_ratio, 4)});
  t.add_row({"E_network (J)", eend::Table::num(r.total_energy_j, 1)});
  t.add_row({"  data (J)", eend::Table::num(r.data_energy_j, 2)});
  t.add_row({"  control (J)", eend::Table::num(r.control_energy_j, 2)});
  t.add_row({"  passive (J)", eend::Table::num(r.passive_energy_j, 1)});
  t.add_row({"transmit energy (J)", eend::Table::num(r.transmit_energy_j, 2)});
  t.add_row({"energy goodput (bit/J)",
             eend::Table::num(r.goodput_bit_per_j, 1)});
  t.add_row({"avg end-to-end delay (s)",
             eend::Table::num(r.average_delay_s, 4)});
  t.add_row({"nodes carrying data", std::to_string(r.nodes_carrying_data)});
  t.add_row({"RREQ transmissions", std::to_string(r.rreq_transmissions)});
  t.add_row({"MAC collisions", std::to_string(r.mac_collisions)});
  std::cout << t.to_text() << '\n';
  return 0;
}
