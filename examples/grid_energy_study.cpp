// The §5.2.3 grid methodology as a reusable tool: freeze routes from a
// base-rate simulation of a chosen stack on the 7x7 hypothetical-card grid
// and sweep the analytic energy model over rates — printing the goodput
// series, frozen routes and per-rate power breakdown.
//
//   ./grid_energy_study --stack=titan-pc --rates=2,10,50,200
#include <iostream>

#include "core/grid_study.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

eend::net::StackSpec stack_by_name(const std::string& name) {
  using S = eend::net::StackSpec;
  if (name == "titan-pc") return S::titan_pc();
  if (name == "titan-pc-perfect") return S::titan_pc_perfect();
  if (name == "mtpr") return S::mtpr_perfect();
  if (name == "mtpr-odpm") return S::mtpr_odpm();
  if (name == "mtpr+") return S::mtpr_plus_perfect();
  if (name == "mtpr+-odpm") return S::mtpr_plus_odpm();
  if (name == "dsr") return S::dsr_perfect();
  if (name == "dsr-odpm") return S::dsr_odpm();
  if (name == "dsrh") return S::dsrh_norate_perfect();
  if (name == "dsrh-odpm") return S::dsrh_odpm_norate();
  if (name == "dsr-active") return S::dsr_active();
  std::cerr << "unknown stack '" << name << "', using titan-pc\n";
  return S::titan_pc();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);
  const auto stack = stack_by_name(flags.get("stack", "titan-pc"));

  auto scenario = net::ScenarioConfig::hypothetical_grid();
  scenario.duration_s = flags.get_double("duration", 300.0);
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  std::vector<double> rates{2, 5, 10, 20, 50, 100, 150, 200};
  if (flags.has("rates")) {
    rates.clear();
    const std::string s = flags.get("rates", "");
    std::size_t pos = 0;
    while (pos < s.size()) {
      auto next = s.find(',', pos);
      if (next == std::string::npos) next = s.size();
      rates.push_back(std::stod(s.substr(pos, next - pos)));
      pos = next + 1;
    }
  }

  std::cout << "Stack: " << stack.label << " on the 7x7 "
            << scenario.card.name << " grid (" << scenario.field_w << " m)\n";
  const auto series = core::grid_series(scenario, stack, rates);

  std::cout << "\nFrozen routes use " << series.active_nodes.size()
            << " active nodes:";
  for (auto v : series.active_nodes) std::cout << ' ' << v;
  std::cout << "\n\n";

  Table t({"rate (pkt/s)", "data power (W)", "passive power (W)",
           "total (W)", "goodput (Kbit/J)"});
  for (const auto& p : series.points)
    t.add_row({Table::num(p.rate_pps, 1), Table::num(p.data_power_w, 3),
               Table::num(p.passive_power_w, 3),
               Table::num(p.network_power_w, 3),
               Table::num(p.goodput_bit_per_j / 1e3, 3)});
  std::cout << t.to_text();
  return 0;
}
