// Compare every protocol stack on one user-defined scenario: the
// "which approach should my network use?" tool.
//
//   ./protocol_comparison --nodes=80 --field=800 --flows=12 --rate=4
//       --duration=300 --runs=3 --seed=7
#include <iostream>

#include "core/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);

  net::ScenarioConfig sc;
  sc.node_count = static_cast<std::size_t>(flags.get_int("nodes", 80));
  sc.field_w = sc.field_h = flags.get_double("field", 800.0);
  sc.flow_count = static_cast<std::size_t>(flags.get_int("flows", 12));
  sc.rate_pps = flags.get_double("rate", 4.0);
  sc.duration_s = flags.get_double("duration", 300.0);
  sc.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto runs = static_cast<std::size_t>(flags.get_int("runs", 3));

  const std::vector<net::StackSpec> stacks = {
      net::StackSpec::dsr_active(),      net::StackSpec::dsr_odpm(),
      net::StackSpec::dsr_odpm_pc(),     net::StackSpec::titan_pc(),
      net::StackSpec::dsrh_odpm_rate(),  net::StackSpec::dsrh_odpm_norate(),
      net::StackSpec::dsdvh_odpm_psm(),  net::StackSpec::dsdvh_odpm_span(),
      net::StackSpec::mtpr_odpm(),       net::StackSpec::mtpr_plus_odpm()};

  std::cout << "Scenario: " << sc.node_count << " nodes in " << sc.field_w
            << "x" << sc.field_h << " m^2, " << sc.flow_count << " flows @ "
            << sc.rate_pps << " pkt/s, " << sc.duration_s << " s x " << runs
            << " runs\n";

  Table t({"stack", "delivery", "goodput (bit/J)", "E_network (J)",
           "transmit (J)", "control (J)", "active nodes"});
  std::string best_label;
  double best_goodput = -1.0;
  for (const auto& stack : stacks) {
    core::ExperimentConfig cfg;
    cfg.scenario = sc;
    cfg.stack = stack;
    cfg.runs = runs;
    const auto r = core::run_experiment(cfg);
    if (r.goodput_bit_per_j.mean > best_goodput) {
      best_goodput = r.goodput_bit_per_j.mean;
      best_label = stack.label;
    }
    t.add_row({stack.label,
               Table::num_ci(r.delivery_ratio.mean,
                             r.delivery_ratio.ci95_half_width, 3),
               Table::num_ci(r.goodput_bit_per_j.mean,
                             r.goodput_bit_per_j.ci95_half_width, 1),
               Table::num(r.total_energy_j.mean, 0),
               Table::num(r.transmit_energy_j.mean, 1),
               Table::num(r.control_energy_j.mean, 1),
               Table::num(r.nodes_carrying_data.mean, 1)});
    std::cerr << "  " << stack.label << " done\n";
  }
  std::cout << t.to_text() << "\nMost energy-efficient stack: " << best_label
            << " (" << Table::num(best_goodput, 1) << " bit/J)\n";
  return 0;
}
