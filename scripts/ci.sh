#!/usr/bin/env bash
# CI entry point — the whole gate, reproducible locally. Modes:
#
#   ./scripts/ci.sh           # release: build (-Werror), ctest (incl. the
#                             # eend_lint tree gate), lint JSON report,
#                             # bench smokes, jobs determinism checks
#   ./scripts/ci.sh asan      # ASan+UBSan Debug: build, full ctest,
#                             # --jobs=8 eend_run smoke under the sanitizer
#   ./scripts/ci.sh tsan      # TSan Debug: same, exercising ParallelRunner
#   ./scripts/ci.sh all       # all three in sequence
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-release}"
JOBS="$(nproc 2>/dev/null || echo 2)"

# Sanitizer legs build Debug with zero suppressions and run the FULL ctest
# suite, then push a --quick --jobs=8 manifest through eend_run so the
# thread pool itself (fan-out, seed-order merge) runs under the sanitizer.
sanitizer_gate() {
  local kind="$1" dir="$2"
  echo "== [$kind] configure + build (Debug, EEND_SANITIZE=$kind, -Werror) =="
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Debug \
    -DEEND_SANITIZE="$kind" -DEEND_WERROR=ON
  cmake --build "$dir" -j"$JOBS"
  echo "== [$kind] full ctest =="
  ctest --test-dir "$dir" --output-on-failure -j"$JOBS"
  echo "== [$kind] eend_run --quick --jobs=8 smoke =="
  "$dir/tools/eend_run" --manifest examples/manifests/small_field.json \
    --quick --quiet --jobs=8 > /dev/null
  # The churn kind runs the warm-start serving loop with portfolio fan-out
  # inside each cell — the racy-by-construction path TSan must clear.
  "$dir/tools/eend_run" --manifest examples/manifests/design_churn.json \
    --quick --quiet --jobs=8 > /dev/null
  echo "== [$kind] gate passed =="
}

case "$MODE" in
  asan) sanitizer_gate address build-asan; exit 0 ;;
  tsan) sanitizer_gate thread build-tsan; exit 0 ;;
  all) "$0" release && "$0" asan && "$0" tsan; exit 0 ;;
  release) ;;
  *) echo "usage: $0 [release|asan|tsan|all]" >&2; exit 2 ;;
esac

echo "== configure + build =="
cmake -B build -S . -DEEND_WERROR=ON
cmake --build build -j"$JOBS"

echo "== ctest =="
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== determinism lint (JSON artifact) =="
./build/tools/eend_lint --quiet --json=LINT_report.json
test -s LINT_report.json
echo "OK: tree is lint-clean, wrote LINT_report.json"

echo "== bench smokes (--quick, one per figure family) =="
run() {
  echo "-- $*"
  local bin="$1"
  shift
  "./build/bench/$bin" "$@" > /dev/null
}
run bench_fig7_characteristic_hop_count              # analytic: m_opt curves
run bench_table1_radio_cards                         # analytic: card registry
run bench_sec3_steiner_case_studies                  # analytic: Steiner cases
run bench_fig8_delivery_small --quick --quiet --jobs=0   # small-net sims (Figs 8-10)
run bench_fig11_delivery_large --quick --quiet --jobs=0  # large-net sims (Figs 11-12)
run bench_fig13_hypo_low_perfect --quick --quiet --jobs=0  # grid study (Figs 13-16)
run bench_table2_density --quick --quiet --jobs=0    # density sweep (Table 2)
run bench_ablation_design_knobs --quick --quiet --jobs=0   # ablations
run bench_ext_lifetime --quick --quiet --jobs=0      # lifetime extension

echo "== design search: portfolio bench (JSON artifact) =="
# The bench itself asserts (a) presolve on/off produces identical results
# on the dense family and (b) the sparse shrink family drops >= 2% of its
# nodes (measured 4-5%; half that is the regression floor).
./build/bench/bench_design_portfolio --quick --quiet \
  --assert-min-shrink-pct=2 \
  --json=BENCH_design_portfolio.json > /dev/null
test -s BENCH_design_portfolio.json
echo "OK: wrote BENCH_design_portfolio.json (presolve shrink floor held)"

echo "== design search: quick design_portfolio cell, jobs=1 vs jobs=8 =="
./build/tools/eend_run --manifest examples/manifests/design_portfolio.json \
  --list | grep -q "portfolio_scaling  \[design\]"
for j in 1 8; do
  ./build/tools/eend_run --manifest examples/manifests/design_portfolio.json \
    --quick --quiet --csv="/tmp/eend_dp_j$j.csv" \
    --jsonl="/tmp/eend_dp_j$j.jsonl" --jobs="$j" > "/tmp/eend_dp_j$j.out"
done
cmp /tmp/eend_dp_j1.out /tmp/eend_dp_j8.out
cmp /tmp/eend_dp_j1.csv /tmp/eend_dp_j8.csv
cmp /tmp/eend_dp_j1.jsonl /tmp/eend_dp_j8.jsonl
echo "OK: design kind byte-identical for jobs=1 and jobs=8"

echo "== design replay: simulated-vs-analytic bench (JSON artifact) =="
./build/bench/bench_design_replay --quick --quiet \
  --json=BENCH_design_replay.json > /dev/null
test -s BENCH_design_replay.json
echo "OK: wrote BENCH_design_replay.json"

echo "== design replay: quick design_replay cell, jobs=1 vs jobs=8 =="
./build/tools/eend_run --manifest examples/manifests/design_replay.json \
  --list | grep -q "replay_scaling  \[replay\]"
for j in 1 8; do
  ./build/tools/eend_run --manifest examples/manifests/design_replay.json \
    --quick --quiet --csv="/tmp/eend_dr_j$j.csv" \
    --jsonl="/tmp/eend_dr_j$j.jsonl" --jobs="$j" > "/tmp/eend_dr_j$j.out"
done
cmp /tmp/eend_dr_j1.out /tmp/eend_dr_j8.out
cmp /tmp/eend_dr_j1.csv /tmp/eend_dr_j8.csv
cmp /tmp/eend_dr_j1.jsonl /tmp/eend_dr_j8.jsonl
echo "OK: replay kind byte-identical for jobs=1 and jobs=8"

echo "== design churn: warm-start serving-loop bench (JSON artifact) =="
# Self-asserting floors: the warm repair must beat the from-scratch
# portfolio by >= 3x summed over perturbed epochs (measured 4-8x in
# --quick mode), stay within 5% of its score at every epoch, and presolve
# on/off must produce identical designs (asserted inside the bench).
./build/bench/bench_design_churn --quick --quiet \
  --assert-min-warm-speedup=3.0 --assert-max-gap-pct=5.0 \
  --json=BENCH_design_churn.json > /dev/null
test -s BENCH_design_churn.json
echo "OK: wrote BENCH_design_churn.json (warm speedup/gap floors held)"

echo "== design churn: quick design_churn cell, jobs=1 vs jobs=8 =="
# The churn leg also exercises the telemetry layer: --counters must be
# byte-identical across --jobs (the obs determinism contract) and --trace
# must produce a non-empty Chrome trace; both ship as CI artifacts.
./build/tools/eend_run --manifest examples/manifests/design_churn.json \
  --list | grep -q "churn_serving  \[churn\]"
for j in 1 8; do
  ./build/tools/eend_run --manifest examples/manifests/design_churn.json \
    --quick --quiet --csv="/tmp/eend_dc_j$j.csv" \
    --jsonl="/tmp/eend_dc_j$j.jsonl" --jobs="$j" \
    --counters="/tmp/eend_dc_j$j.counters.jsonl" \
    --trace="/tmp/eend_dc_j$j.trace.json" > "/tmp/eend_dc_j$j.out"
done
cmp /tmp/eend_dc_j1.out /tmp/eend_dc_j8.out
cmp /tmp/eend_dc_j1.csv /tmp/eend_dc_j8.csv
cmp /tmp/eend_dc_j1.jsonl /tmp/eend_dc_j8.jsonl
cmp /tmp/eend_dc_j1.counters.jsonl /tmp/eend_dc_j8.counters.jsonl
echo "OK: churn kind byte-identical for jobs=1 and jobs=8 (incl. --counters)"
# The counter catalog must cover all three layers: sim core, design
# search cache, and the churn engine.
for name in sim.events_fired opt.cache.route_hits churn.events_applied; do
  grep -q "\"counter\":\"$name\"" /tmp/eend_dc_j1.counters.jsonl
done
test -s /tmp/eend_dc_j1.trace.json
cp /tmp/eend_dc_j1.counters.jsonl COUNTERS_design_churn.jsonl
cp /tmp/eend_dc_j1.trace.json TRACE_design_churn.json
echo "OK: counters cover sim/opt/churn, wrote COUNTERS_design_churn.jsonl + TRACE_design_churn.json"

echo "== event core: ladder-queue vs baseline-heap bench (JSON artifact) =="
# Self-asserting floors: conservative bounds (measured ~4.8x / ~59M ops/s
# even in --quick mode) that still catch a return to heap-scheduler scaling.
./build/bench/bench_micro_simcore --quick --quiet \
  --json=BENCH_simcore.json \
  --assert-churn-speedup=3.0 --assert-churn-events-per-s=10000000 > /dev/null
test -s BENCH_simcore.json
echo "OK: wrote BENCH_simcore.json (churn speedup/events-per-s floors held)"

echo "== event core: same floors with telemetry compiled off (-DEEND_OBS=OFF) =="
# The default build above ran the floors with telemetry ON; this leg pins
# that the no-op path really compiles down to nothing (the floors must
# hold identically) and that the tree builds cleanly with the gate off.
cmake -B build-noobs -S . -DEEND_WERROR=ON -DEEND_OBS=OFF
cmake --build build-noobs -j"$JOBS" --target bench_micro_simcore
./build-noobs/bench/bench_micro_simcore --quick --quiet \
  --json=BENCH_simcore_noobs.json \
  --assert-churn-speedup=3.0 --assert-churn-events-per-s=10000000 > /dev/null
test -s BENCH_simcore_noobs.json
# Report the telemetry on/off delta on the churn workload (both JSONs
# self-label via "obs_enabled"; the first ladder_ops_per_s is churn's).
on=$(awk -F: '/"ladder_ops_per_s"/{gsub(/[ ,]/,"",$2); print $2; exit}' BENCH_simcore.json)
off=$(awk -F: '/"ladder_ops_per_s"/{gsub(/[ ,]/,"",$2); print $2; exit}' BENCH_simcore_noobs.json)
awk -v on="$on" -v off="$off" 'BEGIN{printf "OK: churn throughput, telemetry on/off: %.1fM / %.1fM ops/s (ratio %.3f)\n", on/1e6, off/1e6, on/off}'
echo "OK: wrote BENCH_simcore_noobs.json (floors held with telemetry off)"

echo "== spatial index: construction/query bench (JSON artifact) =="
./build/bench/bench_channel_build --quick --quiet \
  --json=BENCH_channel_build.json > /dev/null
test -s BENCH_channel_build.json
echo "OK: wrote BENCH_channel_build.json"

echo "== spatial index: 2k-node huge_field smoke (eend_run --quick) =="
./build/tools/eend_run --manifest examples/manifests/huge_field.json \
  --quick --quiet --jobs=0 > /tmp/eend_huge.out
grep -q "Huge field" /tmp/eend_huge.out
echo "OK: 2k-node field simulated end-to-end"

echo "== parallel determinism: jobs=1 vs jobs=4 must match byte-for-byte =="
./build/bench/bench_fig8_delivery_small --quick --quiet --jobs=1 > /tmp/eend_j1.out
./build/bench/bench_fig8_delivery_small --quick --quiet --jobs=4 > /tmp/eend_j4.out
cmp /tmp/eend_j1.out /tmp/eend_j4.out
echo "OK: tables identical"

echo "== manifest engine: eend_run reproduces Fig 7, CSV/JSONL deterministic =="
./build/tools/eend_run --manifest examples/manifests/fig7_small.json \
  --jobs=0 --quiet --csv=/tmp/eend_fig7.csv --jsonl=/tmp/eend_fig7.jsonl \
  > /tmp/eend_fig7.out
grep -q "Figure 7" /tmp/eend_fig7.out
# stdout tables AND machine files must be byte-identical for any --jobs.
for j in 1 8; do
  ./build/tools/eend_run --manifest examples/manifests/small_field.json \
    --quick --quiet --csv="/tmp/eend_sf_j$j.csv" \
    --jsonl="/tmp/eend_sf_j$j.jsonl" --jobs="$j" > "/tmp/eend_sf_j$j.out"
done
cmp /tmp/eend_sf_j1.out /tmp/eend_sf_j8.out
cmp /tmp/eend_sf_j1.csv /tmp/eend_sf_j8.csv
cmp /tmp/eend_sf_j1.jsonl /tmp/eend_sf_j8.jsonl
echo "OK: eend_run output identical for jobs=1 and jobs=8"

# The golden regression suite runs under ctest above (from build/tests, so
# any golden_diff_*.txt reports land where the workflow's artifact upload
# looks for them).

echo "== CI passed =="
