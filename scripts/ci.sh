#!/usr/bin/env bash
# CI entry point: tier-1 verify (configure, build, ctest) plus one --quick
# bench smoke per figure family and a jobs=1 vs jobs=4 determinism check.
# Usable locally too: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== configure + build =="
cmake -B build -S .
cmake --build build -j"$JOBS"

echo "== ctest =="
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== bench smokes (--quick, one per figure family) =="
run() {
  echo "-- $*"
  local bin="$1"
  shift
  "./build/bench/$bin" "$@" > /dev/null
}
run bench_fig7_characteristic_hop_count              # analytic: m_opt curves
run bench_table1_radio_cards                         # analytic: card registry
run bench_sec3_steiner_case_studies                  # analytic: Steiner cases
run bench_fig8_delivery_small --quick --quiet --jobs=0   # small-net sims (Figs 8-10)
run bench_fig11_delivery_large --quick --quiet --jobs=0  # large-net sims (Figs 11-12)
run bench_fig13_hypo_low_perfect --quick --quiet --jobs=0  # grid study (Figs 13-16)
run bench_table2_density --quick --quiet --jobs=0    # density sweep (Table 2)
run bench_ablation_design_knobs --quick --quiet --jobs=0   # ablations
run bench_ext_lifetime --quick --quiet --jobs=0      # lifetime extension

echo "== parallel determinism: jobs=1 vs jobs=4 must match byte-for-byte =="
./build/bench/bench_fig8_delivery_small --quick --quiet --jobs=1 > /tmp/eend_j1.out
./build/bench/bench_fig8_delivery_small --quick --quiet --jobs=4 > /tmp/eend_j4.out
cmp /tmp/eend_j1.out /tmp/eend_j4.out
echo "OK: tables identical"

echo "== CI passed =="
