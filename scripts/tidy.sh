#!/usr/bin/env bash
# clang-tidy sweep over the tree using the profile in .clang-tidy.
#
#   ./scripts/tidy.sh                 # whole tree (needs a configured build/)
#   ./scripts/tidy.sh src/routing     # just one subtree
#
# Requires clang-tidy and a compile_commands.json; we export one from the
# existing CMake cache (build/ by default, override with BUILD_DIR=...).
# Advisory locally; the hard gates are eend_lint and the -Werror build.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "tidy: clang-tidy not installed — skipping (advisory check)" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "tidy: exporting compile_commands.json into $BUILD_DIR"
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

TARGETS=("${@:-src tests bench tools examples}")
FILES=$(find ${TARGETS[@]} -name '*.cpp' -o -name '*.cc' -o -name '*.cxx' \
        | sort)
if [ -z "$FILES" ]; then
  echo "tidy: no sources under: ${TARGETS[*]}" >&2
  exit 2
fi

echo "$FILES" | xargs -P "$JOBS" -n 1 \
  clang-tidy -p "$BUILD_DIR" --quiet
echo "tidy: clean"
